package invariant

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"softerror/internal/core"
	"softerror/internal/rng"
	"softerror/internal/server"
	"softerror/internal/spec"
)

// checkFingerprintInjectivity audits the eval content-address over a
// seed-drawn family of pairwise-distinct normalised requests: no two may
// share a fingerprint (a collision silently serves the wrong artefact), and
// a request spelling out the documented defaults must share one with the
// implicit form (or the cache stores the same bytes twice).
func checkFingerprintInjectivity(seed uint64, opt Options) error {
	s := rng.New(seed, 0xF1A6)
	all := spec.All()
	b1 := all[s.Intn(len(all))].Name
	b2 := all[s.Intn(len(all))].Name
	for b2 == b1 {
		b2 = all[s.Intn(len(all))].Name
	}
	base := uint64(1000 + s.Intn(9000))
	scalar := 1 + s.Intn(1000)

	var reqs []server.EvalRequest
	for _, exp := range []string{"table1", "table2", "breakdown", "fig2", "fig3", "fig4", "ablation", "regfile", "outcomes", "simpoints", "all"} {
		reqs = append(reqs, server.EvalRequest{Experiment: exp})
	}
	for i := uint64(0); i < 6; i++ {
		reqs = append(reqs, server.EvalRequest{Experiment: "table1", Commits: base + 500*i})
	}
	reqs = append(reqs,
		server.EvalRequest{Experiment: "table1", CSV: true},
		server.EvalRequest{Experiment: "table1", Benches: []string{b1}},
		server.EvalRequest{Experiment: "table1", Benches: []string{b2}},
		server.EvalRequest{Experiment: "table1", Benches: []string{b1, b2}},
		// The same scalar moving between knobs must move the address.
		server.EvalRequest{Experiment: "outcomes", Strikes: scalar},
		server.EvalRequest{Experiment: "outcomes", Seed: uint64(scalar)},
		server.EvalRequest{Experiment: "fig3", PET: scalar},
		server.EvalRequest{Experiment: "fig3", SimPoints: scalar},
	)

	seen := make(map[string]int)
	for i, r := range reqs {
		fp, err := r.Fingerprint()
		if err != nil {
			return fmt.Errorf("request %d (%+v): %w", i, r, err)
		}
		if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
			return fmt.Errorf("fingerprint %q is not a SHA-256 hex digest", fp)
		}
		if j, dup := seen[fp]; dup {
			return fmt.Errorf("distinct requests share fingerprint %s:\n  %+v\n  %+v", fp, reqs[j], reqs[i])
		}
		seen[fp] = i
	}

	implicit := server.EvalRequest{Experiment: "table1"}
	explicit := server.EvalRequest{
		Experiment: "table1", Commits: core.DefaultCommits, PET: 512,
		RawFIT: 0.001, SimPoints: 4, Strikes: 50_000, Seed: 1,
	}
	a, err := implicit.Fingerprint()
	if err != nil {
		return err
	}
	b, err := explicit.Fingerprint()
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("spelled-out defaults address %s, implicit form %s — the cache would store the same bytes twice", b, a)
	}
	return nil
}

// post runs one POST against the in-process server and returns the
// recorded response.
func post(s *server.Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// checkCacheConcurrency hammers /v1/eval with concurrent mixed hit/miss
// load over seed-drawn request specs and demands byte-identity: whichever
// goroutine computes, whichever hits cache, the body for one spec is one
// exact byte string, and X-Cache only ever says hit or miss.
func checkCacheConcurrency(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xCA4E)
	srv := server.New(server.Config{Workers: 1, MaxEvals: 64, CacheBytes: 8 << 20})
	defer srv.Close()

	bench := spec.All()[s.Intn(len(spec.All()))].Name
	specs := []string{
		`{"experiment":"table2"}`, // pure table: hits the cache path with no simulation
		fmt.Sprintf(`{"experiment":"table1","benches":[%q],"commits":%d}`, bench, opt.Commits),
		fmt.Sprintf(`{"experiment":"table1","benches":[%q],"commits":%d,"csv":true}`, bench, opt.Commits),
	}

	const perSpec = 6
	type reply struct {
		spec   int
		status int
		xcache string
		body   string
	}
	replies := make([]reply, len(specs)*perSpec)
	var wg sync.WaitGroup
	for si, body := range specs {
		for k := 0; k < perSpec; k++ {
			wg.Add(1)
			go func(i int, reqBody string) {
				defer wg.Done()
				rec := post(srv, "/v1/eval", reqBody)
				replies[i] = reply{
					spec:   i / perSpec,
					status: rec.Code,
					xcache: rec.Header().Get("X-Cache"),
					body:   rec.Body.String(),
				}
			}(si*perSpec+k, body)
		}
	}
	wg.Wait()

	bodies := make(map[int]string)
	for _, r := range replies {
		if r.status != http.StatusOK {
			return fmt.Errorf("spec %d returned %d: %s", r.spec, r.status, r.body)
		}
		if r.xcache != "hit" && r.xcache != "miss" {
			return fmt.Errorf("spec %d returned X-Cache %q", r.spec, r.xcache)
		}
		if prev, ok := bodies[r.spec]; !ok {
			bodies[r.spec] = r.body
		} else if prev != r.body {
			return fmt.Errorf("spec %d served two different bodies under concurrent load (%d vs %d bytes)",
				r.spec, len(prev), len(r.body))
		}
	}
	// Distinct specs must not alias to one body either.
	if bodies[1] == bodies[2] {
		return fmt.Errorf("table and CSV forms of the same eval served identical bytes")
	}
	return nil
}

// eventStream fetches a job's full ndjson event stream. The handler only
// returns once the job is terminal, so this also acts as the wait.
func eventStream(s *server.Server, id string) ([]server.Event, []byte, error) {
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, nil, fmt.Errorf("events endpoint returned %d: %s", rec.Code, rec.Body.String())
	}
	raw := rec.Body.Bytes()
	var events []server.Event
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, nil, fmt.Errorf("bad event line %q: %w", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return events, raw, sc.Err()
}

// checkJobLifecycle submits a seed-drawn sweep job and audits its event
// stream: Seq dense from zero, done monotonic and bounded by total, exactly
// one terminal event and it is last, and a replayed stream is byte-identical
// (the log is immutable once terminal).
func checkJobLifecycle(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x10BF)
	srv := server.New(server.Config{Workers: 1, MaxJobs: 2})
	defer srv.Close()

	bench := spec.All()[s.Intn(len(spec.All()))].Name
	policies := []string{`"baseline"`, `"baseline","squash-l1"`}[s.Intn(2)]
	body := fmt.Sprintf(`{"benches":[%q],"policies":[%s],"commits":%d}`, bench, policies, opt.Commits)
	rec := post(srv, "/v1/sweep", body)
	if rec.Code != http.StatusAccepted {
		return fmt.Errorf("sweep submission returned %d: %s", rec.Code, rec.Body.String())
	}
	var acc struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		return err
	}

	events, raw, err := eventStream(srv, acc.ID)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("job %s produced no events", acc.ID)
	}
	lastDone := 0
	for i, ev := range events {
		if ev.Seq != i {
			return fmt.Errorf("event %d has seq %d — the stream is not dense", i, ev.Seq)
		}
		if ev.Done < lastDone {
			return fmt.Errorf("done regressed %d -> %d at event %d", lastDone, ev.Done, i)
		}
		lastDone = ev.Done
		if ev.Done > ev.Total || ev.Total != acc.Total {
			return fmt.Errorf("event %d reports %d/%d done of an accepted total %d", i, ev.Done, ev.Total, acc.Total)
		}
		if terminal := ev.State == server.JobDone || ev.State == server.JobFailed ||
			ev.State == server.JobInterrupted; terminal != (i == len(events)-1) {
			return fmt.Errorf("terminal state %q at event %d of %d", ev.State, i, len(events))
		}
	}
	if events[0].State != server.JobQueued {
		return fmt.Errorf("stream opens in state %q, want queued", events[0].State)
	}
	if final := events[len(events)-1]; final.State != server.JobDone || final.Done != acc.Total {
		return fmt.Errorf("final event %+v, want done with all %d cells", final, acc.Total)
	}

	replayed, rawAgain, err := eventStream(srv, acc.ID)
	if err != nil {
		return err
	}
	if len(replayed) != len(events) || !bytes.Equal(raw, rawAgain) {
		return fmt.Errorf("replayed event stream differs from the live one (%d vs %d events)",
			len(events), len(replayed))
	}
	return nil
}
