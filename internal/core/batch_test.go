package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"softerror/internal/pipeline"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// TestRunBatchMatchesIndependentRuns pins the tentpole identity end to
// end: a batched evaluation's Results — IPC, stats, IQ/front-end/store-
// buffer reports, deadness — equal K independent RunContext runs exactly.
func TestRunBatchMatchesIndependentRuns(t *testing.T) {
	b, ok := spec.ByName("mcf")
	if !ok {
		t.Fatal("mcf not in roster")
	}
	const commits = 15_000

	var specs []BatchSpec
	for _, pol := range []Policy{PolicyBaseline, PolicySquashL1, PolicySquashL0, PolicyThrottleL0} {
		cfg := pipeline.DefaultConfig()
		pol.Apply(&cfg)
		specs = append(specs, BatchSpec{Pipeline: cfg, FrontEnd: true, StoreBuffer: true})
	}
	narrow := pipeline.DefaultConfig()
	narrow.IQSize = 16
	narrow.StoreBufferSize = 4
	specs = append(specs, BatchSpec{Pipeline: narrow})

	batched, err := RunBatchContext(context.Background(), b.Params, commits, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		solo, err := RunContext(context.Background(), Config{
			Workload:    b.Params,
			Pipeline:    sp.Pipeline,
			Commits:     commits,
			FrontEnd:    sp.FrontEnd,
			StoreBuffer: sp.StoreBuffer,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(solo, batched[i]) {
			t.Fatalf("lane %d diverges from solo run:\n solo    IPC=%.6f SDC=%.6f cycles=%d\n batched IPC=%.6f SDC=%.6f cycles=%d",
				i, solo.IPC, solo.Report.SDCAVF(), solo.Cycles,
				batched[i].IPC, batched[i].Report.SDCAVF(), batched[i].Cycles)
		}
	}
}

// TestRunBatchUnshareableFallsThrough pins the typed fallback: a workload
// with a PC-indexed predictor reports ErrUnshareable so callers can route
// each spec through the solo path.
func TestRunBatchUnshareableFallsThrough(t *testing.T) {
	p := workload.Default()
	p.BranchPredictor = "gshare"
	_, err := RunBatchContext(context.Background(), p, 1000,
		[]BatchSpec{{Pipeline: pipeline.DefaultConfig()}})
	if !errors.Is(err, workload.ErrUnshareable) {
		t.Fatalf("gshare batch = %v, want ErrUnshareable", err)
	}
}
