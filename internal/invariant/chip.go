package invariant

import (
	"fmt"

	"softerror/internal/cache"
	"softerror/internal/chip"
	"softerror/internal/rng"
)

// planOptions mirrors the assignment alphabet chip.Plan searches: no
// protection, bare parity, parity with full π tracking, ECC.
var planOptions = []struct {
	prot     cache.Protection
	tracking float64
}{
	{cache.ProtNone, 0},
	{cache.ProtParity, 0},
	{cache.ProtParity, 1},
	{cache.ProtECC, 0},
}

// randomChipBudget draws a small structure inventory with AVFs, sizes and
// targets spanning from trivially-met to infeasible. The structure count is
// capped at 4 so the oracle can brute-force all 4^n assignments.
func randomChipBudget(s *rng.Stream) *chip.Budget {
	b := &chip.Budget{
		RawFITPerBit:   1e-5 * (0.05 + s.Float64()),
		SDCTargetYears: 100 * (0.1 + 20*s.Float64()),
		DUETargetYears: 1 + 30*s.Float64(),
	}
	n := 2 + s.Intn(3)
	for i := 0; i < n; i++ {
		opt := planOptions[s.Intn(len(planOptions))]
		b.Structures = append(b.Structures, chip.Structure{
			Name:        fmt.Sprintf("s%d", i),
			Bits:        float64(1 + s.Intn(1<<20)),
			SDCAVF:      0.6 * s.Float64(),
			FalseDUEAVF: 0.6 * s.Float64(),
			Protection:  opt.prot,
			Tracking:    opt.tracking * s.Float64(),
		})
	}
	return b
}

// better mirrors chip.Plan's candidate ordering: lower AreaCost first, ties
// broken by lower total FIT.
func betterEval(a, b chip.Evaluation) bool {
	if a.AreaCost != b.AreaCost {
		return a.AreaCost < b.AreaCost
	}
	return float64(a.SDC+a.DUE) < float64(b.SDC+b.DUE)
}

// checkChipPlan pins the budget arithmetic the §2 framework rests on, over
// randomised inventories:
//
//   - mix-cost monotonicity: upgrading one structure one step along
//     none→parity→ECC never lowers AreaCost and never raises chip SDC, and
//     deploying more π tracking on a parity structure never raises DUE while
//     leaving AreaCost and SDC untouched;
//   - decomposition: chip SDC/DUE are exactly the sums of the per-structure
//     Contribution terms;
//   - plan optimality: Plan's answer matches a brute-force sweep of every
//     assignment under the same ordering — equal AreaCost and equal total
//     FIT — and Plan errors exactly when the sweep finds nothing feasible.
func checkChipPlan(seed uint64, opt Options) error {
	_ = opt.withDefaults()
	s := rng.New(seed, 0xC819)

	for trial := 0; trial < 20; trial++ {
		b := randomChipBudget(s)
		ev, err := b.Evaluate()
		if err != nil {
			return err
		}

		// Decomposition: the chip rates are the plain sums of the
		// per-structure contributions, accumulated in inventory order.
		var sdc, due float64
		for i := range b.Structures {
			cs, cd := b.Structures[i].Contribution(b.RawFITPerBit)
			sdc += float64(cs)
			due += float64(cd)
		}
		if float64(ev.SDC) != sdc || float64(ev.DUE) != due {
			return fmt.Errorf("trial %d: Evaluate (SDC=%g DUE=%g) is not the sum of Contributions (SDC=%g DUE=%g)",
				trial, float64(ev.SDC), float64(ev.DUE), sdc, due)
		}

		// Mix-cost monotonicity: one-step protection upgrades on one random
		// structure.
		i := s.Intn(len(b.Structures))
		for _, up := range []struct{ from, to cache.Protection }{
			{cache.ProtNone, cache.ProtParity},
			{cache.ProtParity, cache.ProtECC},
		} {
			lo := cloneBudget(b)
			lo.Structures[i].Protection = up.from
			hi := cloneBudget(b)
			hi.Structures[i].Protection = up.to
			loEv, err := lo.Evaluate()
			if err != nil {
				return err
			}
			hiEv, err := hi.Evaluate()
			if err != nil {
				return err
			}
			if hiEv.AreaCost < loEv.AreaCost {
				return fmt.Errorf("trial %d: upgrading %q %v→%v lowered AreaCost %g→%g",
					trial, b.Structures[i].Name, up.from, up.to, loEv.AreaCost, hiEv.AreaCost)
			}
			if float64(hiEv.SDC) > float64(loEv.SDC) {
				return fmt.Errorf("trial %d: upgrading %q %v→%v raised SDC %g→%g",
					trial, b.Structures[i].Name, up.from, up.to, float64(loEv.SDC), float64(hiEv.SDC))
			}
		}
		// More tracking on a parity structure: DUE weakly falls, AreaCost
		// and SDC are unchanged.
		lo := cloneBudget(b)
		lo.Structures[i].Protection = cache.ProtParity
		lo.Structures[i].Tracking = s.Float64()
		hi := cloneBudget(lo)
		hi.Structures[i].Tracking = lo.Structures[i].Tracking +
			(1-lo.Structures[i].Tracking)*s.Float64()
		loEv, err := lo.Evaluate()
		if err != nil {
			return err
		}
		hiEv, err := hi.Evaluate()
		if err != nil {
			return err
		}
		if float64(hiEv.DUE) > float64(loEv.DUE) {
			return fmt.Errorf("trial %d: more tracking on %q raised DUE %g→%g",
				trial, b.Structures[i].Name, float64(loEv.DUE), float64(hiEv.DUE))
		}
		if hiEv.AreaCost != loEv.AreaCost || hiEv.SDC != loEv.SDC {
			return fmt.Errorf("trial %d: tracking on %q changed AreaCost or SDC", trial, b.Structures[i].Name)
		}

		// Plan optimality against the brute-force oracle.
		planned, plannedEv, planErr := b.Plan()
		oracleEv, feasible, err := bruteForceBest(b)
		if err != nil {
			return err
		}
		switch {
		case !feasible:
			if planErr == nil {
				return fmt.Errorf("trial %d: Plan returned a mix (AreaCost=%g) but no assignment meets the targets",
					trial, plannedEv.AreaCost)
			}
		case planErr != nil:
			return fmt.Errorf("trial %d: Plan failed but the oracle found a feasible mix (AreaCost=%g): %w",
				trial, oracleEv.AreaCost, planErr)
		default:
			if !plannedEv.MeetsSDC || !plannedEv.MeetsDUE {
				return fmt.Errorf("trial %d: Plan's mix misses its own targets", trial)
			}
			if plannedEv.AreaCost != oracleEv.AreaCost ||
				float64(plannedEv.SDC+plannedEv.DUE) != float64(oracleEv.SDC+oracleEv.DUE) {
				return fmt.Errorf("trial %d: Plan (AreaCost=%g, FIT=%g) is not oracle-optimal (AreaCost=%g, FIT=%g)",
					trial, plannedEv.AreaCost, float64(plannedEv.SDC+plannedEv.DUE),
					oracleEv.AreaCost, float64(oracleEv.SDC+oracleEv.DUE))
			}
			// The returned budget must re-evaluate to the evaluation it was
			// reported with.
			reEv, err := planned.Evaluate()
			if err != nil {
				return err
			}
			if reEv != plannedEv {
				return fmt.Errorf("trial %d: Plan's budget re-evaluates differently", trial)
			}
		}
	}
	return nil
}

// bruteForceBest sweeps every protection assignment and returns the best
// feasible evaluation under Plan's ordering.
func bruteForceBest(b *chip.Budget) (best chip.Evaluation, feasible bool, err error) {
	n := len(b.Structures)
	assign := make([]int, n)
	for {
		cand := cloneBudget(b)
		for k, a := range assign {
			cand.Structures[k].Protection = planOptions[a].prot
			cand.Structures[k].Tracking = planOptions[a].tracking
		}
		ev, evErr := cand.Evaluate()
		if evErr != nil {
			return chip.Evaluation{}, false, evErr
		}
		if ev.MeetsSDC && ev.MeetsDUE && (!feasible || betterEval(ev, best)) {
			best, feasible = ev, true
		}
		// Odometer increment over the assignment vector.
		k := 0
		for ; k < n; k++ {
			assign[k]++
			if assign[k] < len(planOptions) {
				break
			}
			assign[k] = 0
		}
		if k == n {
			return best, feasible, nil
		}
	}
}

func cloneBudget(b *chip.Budget) *chip.Budget {
	c := *b
	c.Structures = append([]chip.Structure(nil), b.Structures...)
	return &c
}
