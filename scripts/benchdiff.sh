#!/bin/sh
# benchdiff.sh OLD NEW — diff two `go test -bench` outputs metric by metric.
#
# Capture each side with e.g.
#
#	go test -run NONE -bench PipelineHotLoop -benchmem -benchtime 5x . > bench_old.txt
#	... apply the change ...
#	go test -run NONE -bench PipelineHotLoop -benchmem -benchtime 5x . > bench_new.txt
#	scripts/benchdiff.sh bench_old.txt bench_new.txt
#
# Output is one row per (benchmark, metric) present in both files, with the
# old value, new value and the relative delta. Works on any Go benchmark
# output: ns/op, B/op, allocs/op and custom ReportMetric units alike.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 old.txt new.txt" >&2
	exit 2
fi

parse() {
	# Benchmark lines look like:
	#   BenchmarkName/sub-8  3  99315222 ns/op  0.63 Mcycles/s  1956 B/op  19 allocs/op
	# Emit "name metric value" triples, one per metric, with the -N proc
	# suffix stripped so runs at different GOMAXPROCS still align.
	awk '/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		for (i = 3; i + 1 <= NF; i += 2)
			printf "%s %s %s\n", name, $(i + 1), $i
	}' "$1"
}

old_tmp=$(mktemp)
new_tmp=$(mktemp)
trap 'rm -f "$old_tmp" "$new_tmp"' EXIT
parse "$1" > "$old_tmp"
parse "$2" > "$new_tmp"

# Join on (name, metric); report old, new and delta%.
awk '
NR == FNR { old[$1 " " $2] = $3; next }
{
	key = $1 " " $2
	if (!(key in old)) next
	o = old[key] + 0
	n = $3 + 0
	delta = (o == 0) ? 0 : 100 * (n - o) / o
	printf "%-55s %-12s %14g %14g %+9.1f%%\n", $1, $2, o, n, delta
}
BEGIN { printf "%-55s %-12s %14s %14s %10s\n", "benchmark", "metric", "old", "new", "delta" }
' "$old_tmp" "$new_tmp"
