package ace

import (
	"math"
	"testing"

	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// fakeTrace builds a minimal trace around explicit residencies and a commit
// log, for exact-arithmetic AVF tests.
func fakeTrace(cycles uint64, iqSize int, log []isa.Inst, res []pipeline.Residency) *pipeline.Trace {
	return &pipeline.Trace{
		Cycles:      cycles,
		IQSize:      iqSize,
		CommitLog:   log,
		Residencies: res,
	}
}

func TestAnalyzeSingleACEResidency(t *testing.T) {
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone) // live-out => ACE
	in := b.log[0]
	tr := fakeTrace(100, 1, b.log, []pipeline.Residency{
		{Inst: in, Enq: 0, Issue: 40, Evict: 50, Issued: true},
	})
	r := Analyze(tr)

	bits := uint64(isa.EntryPayloadBits)
	if r.TotalBC() != 100*bits {
		t.Fatalf("TotalBC = %d", r.TotalBC())
	}
	if r.ACEBC != 40*bits {
		t.Fatalf("ACEBC = %d, want %d", r.ACEBC, 40*bits)
	}
	if r.ExACEBC != 10*bits {
		t.Fatalf("ExACEBC = %d, want %d", r.ExACEBC, 10*bits)
	}
	if r.IdleBC != 50*bits {
		t.Fatalf("IdleBC = %d, want %d", r.IdleBC, 50*bits)
	}
	if got, want := r.SDCAVF(), 0.40; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SDCAVF = %v, want %v", got, want)
	}
	if r.FalseDUEAVF() != 0 {
		t.Fatalf("FalseDUEAVF = %v, want 0", r.FalseDUEAVF())
	}
	if r.DUEAVF() != r.SDCAVF() {
		t.Fatal("DUE AVF of all-ACE trace should equal SDC AVF")
	}
}

func TestAnalyzeNeutralOpcodeBitsACE(t *testing.T) {
	b := &logBuilder{}
	b.nop()
	in := b.log[0]
	tr := fakeTrace(10, 1, b.log, []pipeline.Residency{
		{Inst: in, Enq: 0, Issue: 10, Evict: 10, Issued: true},
	})
	r := Analyze(tr)
	op := uint64(isa.FieldBits[isa.FieldOpcode])
	all := uint64(isa.EntryPayloadBits)
	if r.ACEBC != 10*op {
		t.Fatalf("neutral ACEBC = %d, want %d (opcode bits)", r.ACEBC, 10*op)
	}
	if r.UnACEBC[CatNeutral] != 10*(all-op) {
		t.Fatalf("neutral UnACE = %d, want %d", r.UnACEBC[CatNeutral], 10*(all-op))
	}
}

func TestAnalyzeDeadDestBitsACE(t *testing.T) {
	b := &logBuilder{}
	dead := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone)
	tr := fakeTrace(10, 1, b.log, []pipeline.Residency{
		{Inst: b.log[dead], Enq: 0, Issue: 10, Evict: 10, Issued: true},
	})
	r := Analyze(tr)
	dst := uint64(isa.FieldBits[isa.FieldDest])
	all := uint64(isa.EntryPayloadBits)
	if r.ACEBC != 10*dst {
		t.Fatalf("dead-inst ACEBC = %d, want %d (dest bits)", r.ACEBC, 10*dst)
	}
	if r.UnACEBC[CatFDDReg] != 10*(all-dst) {
		t.Fatalf("dead UnACE = %d, want %d", r.UnACEBC[CatFDDReg], 10*(all-dst))
	}
}

func TestAnalyzeDeadStoreFullyUnACE(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x100)
	b.store(isa.IntReg(2), 0x100)
	tr := fakeTrace(10, 1, b.log, []pipeline.Residency{
		{Inst: b.log[st], Enq: 0, Issue: 10, Evict: 10, Issued: true},
	})
	r := Analyze(tr)
	all := uint64(isa.EntryPayloadBits)
	if r.ACEBC != 0 {
		t.Fatalf("dead store ACEBC = %d, want 0 (no destination specifier)", r.ACEBC)
	}
	if r.UnACEBC[CatFDDMem] != 10*all {
		t.Fatalf("dead store UnACE = %d, want %d", r.UnACEBC[CatFDDMem], 10*all)
	}
}

func TestAnalyzeWrongPathAndSquashed(t *testing.T) {
	wp := isa.Inst{Seq: 50, Class: isa.ClassALU, Dest: isa.IntReg(3), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone, WrongPath: true}
	sq := isa.Inst{Seq: 51, Class: isa.ClassALU, Dest: isa.IntReg(4), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	tr := fakeTrace(100, 2, nil, []pipeline.Residency{
		{Inst: wp, Enq: 0, Issue: 20, Evict: 25, Issued: true}, // read wrong-path
		{Inst: sq, Enq: 0, Evict: 30, Squashed: true},          // never read
	})
	r := Analyze(tr)
	all := uint64(isa.EntryPayloadBits)
	if r.UnACEBC[CatWrongPath] != 20*all {
		t.Fatalf("wrong-path UnACE = %d, want %d", r.UnACEBC[CatWrongPath], 20*all)
	}
	if r.NeverReadBC != 30*all {
		t.Fatalf("NeverReadBC = %d, want %d", r.NeverReadBC, 30*all)
	}
	if r.SDCAVF() != 0 {
		t.Fatal("no SDC contribution expected")
	}
	if r.FalseDUEAVF() == 0 {
		t.Fatal("read wrong-path state must contribute false DUE")
	}
}

func TestFalseDUERemainingLevels(t *testing.T) {
	// Hand-build a report with 10 bit-cycles in each un-ACE category.
	r := &Report{Cycles: 1000, Entries: 1, BitsPer: 1, Dead: &Deadness{
		FDDRegDist: []int{4, 600}, // half within a 512-entry PET window
	}}
	for c := Category(1); c < NumCategories; c++ {
		r.UnACEBC[c] = 10
	}
	total := float64(r.TotalBC())

	wantRemaining := map[TrackLevel]float64{
		TrackNever:       80, // nothing covered
		TrackCommit:      60, // wrong-path + pred-false gone
		TrackAntiPi:      50, // + neutral
		TrackPET:         45, // + half of fdd-reg (PET window)
		TrackRegFile:     30, // + all fdd-reg + fdd-ret
		TrackStoreBuffer: 20, // + tdd-reg
		TrackMemory:      0,  // everything
	}
	for lvl, wantBC := range wantRemaining {
		got := r.FalseDUERemaining(lvl, 512)
		want := wantBC / total
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("FalseDUERemaining(%v) = %v, want %v", lvl, got, want)
		}
	}
}

func TestFalseDUERemainingEmptyReport(t *testing.T) {
	r := &Report{Dead: &Deadness{}}
	if r.FalseDUERemaining(TrackMemory, 512) != 0 {
		t.Fatal("empty report should report 0 remaining")
	}
	if r.SDCAVF() != 0 || r.DUEAVF() != 0 {
		t.Fatal("empty report AVFs should be 0")
	}
}

func TestAnalyzeIntegrationWithPipeline(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	cfg := pipeline.DefaultConfig()
	p := pipeline.MustNew(cfg, gen, cache.MustNewDefault())
	tr := p.Run(40000, true)
	r := Analyze(tr)

	// Occupancy classes partition the capacity.
	sum := r.IdleBC + r.NeverReadBC + r.ExACEBC + r.ACEBC + r.UnACETotalBC()
	if sum != r.TotalBC() {
		t.Fatalf("classes sum to %d, want %d", sum, r.TotalBC())
	}
	if r.SDCAVF() <= 0 || r.SDCAVF() >= 1 {
		t.Fatalf("SDC AVF = %v out of (0,1)", r.SDCAVF())
	}
	if r.DUEAVF() <= r.SDCAVF() {
		t.Fatalf("DUE AVF %v should exceed SDC AVF %v (false DUE adds)", r.DUEAVF(), r.SDCAVF())
	}
	if r.IdleFraction() <= 0 {
		t.Fatal("expected some idle occupancy")
	}
	// The paper's dead fraction is ~20%; our default workload should land
	// in a broad band around it.
	df := r.Dead.DeadFraction()
	if df < 0.05 || df > 0.45 {
		t.Fatalf("dead fraction = %v, want in [0.05, 0.45]", df)
	}
	// Every un-ACE category should be represented in a mixed workload.
	for _, c := range []Category{CatWrongPath, CatPredFalse, CatNeutral, CatFDDReg, CatTDDReg, CatFDDMem} {
		if r.UnACEBC[c] == 0 {
			t.Errorf("category %v has zero bit-cycles in a mixed workload", c)
		}
	}
	// Cumulative tracking must be monotone and end at zero.
	prev := math.Inf(1)
	for lvl := TrackNever; lvl <= TrackMemory; lvl++ {
		rem := r.FalseDUERemaining(lvl, 512)
		if rem > prev+1e-12 {
			t.Fatalf("remaining false DUE increased at level %v", lvl)
		}
		prev = rem
	}
	if rem := r.FalseDUERemaining(TrackMemory, 512); rem != 0 {
		t.Fatalf("full tracking leaves %v false DUE, want 0 (100%% coverage)", rem)
	}
}

func TestAnalyzeSquashReducesSDC(t *testing.T) {
	run := func(trigger pipeline.Trigger) *Report {
		params := workload.Default()
		params.L0Frac, params.L1Frac, params.L2Frac, params.MemFrac = 0.70, 0.15, 0.10, 0.05
		gen := workload.MustNew(params)
		cfg := pipeline.DefaultConfig()
		cfg.SquashTrigger = trigger
		p := pipeline.MustNew(cfg, gen, cache.MustNewDefault())
		return Analyze(p.Run(40000, true))
	}
	base := run(pipeline.TriggerNone)
	squash := run(pipeline.TriggerL1Miss)
	if squash.SDCAVF() >= base.SDCAVF() {
		t.Fatalf("squash did not reduce SDC AVF: base %.4f squash %.4f",
			base.SDCAVF(), squash.SDCAVF())
	}
	if squash.DUEAVF() >= base.DUEAVF() {
		t.Fatalf("squash did not reduce DUE AVF: base %.4f squash %.4f",
			base.DUEAVF(), squash.DUEAVF())
	}
}

func BenchmarkAnalyzeDeadness(b *testing.B) {
	gen := workload.MustNew(workload.Default())
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, cache.MustNewDefault())
	tr := p.Run(50000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeDeadness(tr.CommitLog)
	}
}

func BenchmarkAnalyzeFull(b *testing.B) {
	gen := workload.MustNew(workload.Default())
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, cache.MustNewDefault())
	tr := p.Run(50000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(tr)
	}
}

func TestYBranchBound(t *testing.T) {
	// A lone ACE branch residency: the whole ACE share is control.
	br := isa.Inst{Seq: 0, Class: isa.ClassBranch, Dest: isa.RegNone,
		Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	tr := fakeTrace(10, 1, []isa.Inst{br}, []pipeline.Residency{
		{Inst: br, Enq: 0, Issue: 10, Evict: 10, Issued: true},
	})
	r := Analyze(tr)
	if r.YBranchBound() != r.SDCAVF() {
		t.Fatalf("branch-only trace: bound %v != SDC %v", r.YBranchBound(), r.SDCAVF())
	}
	// Integration: the bound is a small fraction of the total SDC AVF —
	// the paper's "not more than a few percentage points".
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	full := Analyze(p.Run(20000, true))
	if full.YBranchBound() <= 0 {
		t.Fatal("mixed workload should have some control ACE")
	}
	if full.YBranchBound() > 0.10 {
		t.Fatalf("Y-branch bound %v implausibly high", full.YBranchBound())
	}
	if full.YBranchBound() >= full.SDCAVF() {
		t.Fatal("control cannot exceed total ACE")
	}
}

func TestPerFieldBreakdownConsistent(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	r := Analyze(p.Run(20000, true))

	// The per-field decomposition must re-sum to the aggregate ACE and
	// un-ACE totals (same bit-level ground truth, different grouping).
	var fieldACE, fieldUn uint64
	for f := isa.Field(0); f < isa.NumFields; f++ {
		fieldACE += r.FieldACEBC[f]
		fieldUn += r.FieldUnACEBC[f]
	}
	if fieldACE != r.ACEBC {
		t.Fatalf("per-field ACE %d != aggregate %d", fieldACE, r.ACEBC)
	}
	if fieldUn != r.UnACETotalBC() {
		t.Fatalf("per-field un-ACE %d != aggregate %d", fieldUn, r.UnACETotalBC())
	}
	// Destination specifiers are disproportionately ACE (dead instructions
	// keep them ACE), so dest's ACE share must exceed imm's.
	destShare := float64(r.FieldACEBC[isa.FieldDest]) / float64(isa.FieldBits[isa.FieldDest])
	immShare := float64(r.FieldACEBC[isa.FieldImm]) / float64(isa.FieldBits[isa.FieldImm])
	if destShare <= immShare {
		t.Fatalf("dest per-bit ACE %.0f should exceed imm %.0f", destShare, immShare)
	}
	// Opcode bits are ACE for neutral instructions too, so opcode beats imm
	// as well.
	opShare := float64(r.FieldACEBC[isa.FieldOpcode]) / float64(isa.FieldBits[isa.FieldOpcode])
	if opShare <= immShare {
		t.Fatalf("opcode per-bit ACE %.0f should exceed imm %.0f", opShare, immShare)
	}
}
