package softerror

import (
	"os"
	"strings"
	"testing"

	"softerror/internal/report"
	"softerror/internal/spec"
)

// TestGoldenTable2CSV pins the CSV rendering of the benchmark roster
// against a checked-in golden file: the roster and the CSV writer are both
// stable interfaces.
func TestGoldenTable2CSV(t *testing.T) {
	tbl := report.New("ignored", "benchmark", "suite", "skipped_m")
	for _, b := range spec.All() {
		kind := "int"
		if b.FP {
			kind = "fp"
		}
		tbl.AddRow(b.Name, kind, itoa(b.SkippedM))
	}
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	const goldenPath = "testdata/table2.golden.csv"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Fatalf("table2 CSV drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
