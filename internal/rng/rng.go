// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Every stochastic component of the simulator (workload synthesis, fault
// injection, cache address streams) draws from an explicitly seeded Stream
// so that experiments are bit-for-bit reproducible across runs and across
// machines. The package deliberately avoids math/rand's global state.
//
// The core generator is PCG32 (O'Neill, 2014): a 64-bit linear congruential
// state with a 32-bit permuted output, which has excellent statistical
// quality for its size and supports cheap independent sequences via the
// stream-increment parameter. Seeds are pre-mixed with SplitMix64 so that
// small or correlated user seeds still produce well-separated states.
package rng

// splitMix64 advances a SplitMix64 state and returns the next mixed value.
// It is used only for seed expansion.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic PCG32 pseudo-random stream. The zero value is
// not useful; construct Streams with New or Derive.
type Stream struct {
	state uint64
	inc   uint64 // must be odd
}

// New returns a Stream seeded from seed and sequence. Distinct sequence
// values yield statistically independent streams even for equal seeds.
func New(seed, sequence uint64) *Stream {
	mix := seed
	s := &Stream{
		inc: (splitMix64(&mix)^sequence)<<1 | 1,
	}
	s.state = splitMix64(&mix)
	s.Uint32() // advance away from the all-zeros corner
	return s
}

// Derive returns a new independent Stream keyed by label. It is the
// preferred way to give each simulator component its own stream from a
// single experiment seed: the parent stream is not perturbed.
func (s *Stream) Derive(label string) *Stream {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(s.state^h, s.inc^(h>>1))
}

// Uint32 returns the next 32 random bits.
func (s *Stream) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// The implementation uses Lemire's multiply-shift rejection method,
// which is unbiased.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint32(n)
	threshold := -bound % bound
	for {
		r := s.Uint32()
		m := uint64(r) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with non-positive n")
	}
	max := uint64(n)
	// Rejection sampling over the smallest power-of-two envelope.
	mask := uint64(1)
	for mask < max {
		mask <<= 1
	}
	mask--
	for {
		v := s.Uint64() & mask
		if v < max {
			return int64(v)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success, so the
// mean is (1-p)/p. Useful for synthesising run lengths. p must be in (0,1].
func (s *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires p in (0,1]")
	}
	n := 0
	for !s.Bool(p) {
		n++
		if n >= 1<<20 { // statistically unreachable guard
			break
		}
	}
	return n
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a uniformly random element index weighted by weights.
// The weights need not be normalised; non-positive weights are treated as
// zero. If all weights are zero, Pick returns 0.
func (s *Stream) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
