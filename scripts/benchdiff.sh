#!/bin/sh
# benchdiff.sh — diff, snapshot and gate `go test -bench` outputs.
#
#	benchdiff.sh old.txt new.txt          # diff two bench outputs
#	benchdiff.sh -snapshot new.txt        # emit a BENCH_<date>.json body
#	benchdiff.sh -gate new.txt [snap]     # fail on >10% regression vs snap
#
# Capture a side with e.g.
#
#	go test -run NONE -bench PipelineHotLoop -benchmem -benchtime 5x . > bench_new.txt
#
# Diff mode prints one row per (benchmark, metric) present in both files,
# with the old value, new value and the relative delta. Works on any Go
# benchmark output: ns/op, B/op, allocs/op and custom ReportMetric units.
#
# Snapshot mode renders the parsed output as the JSON kept in the repo's
# BENCH_<date>.json files (benchmark → {metric: value}); commit a fresh one
# whenever a deliberate performance change moves the numbers:
#
#	scripts/benchdiff.sh -snapshot bench_new.txt > BENCH_$(date +%F).json
#
# Gate mode compares a fresh run against a snapshot — by default the
# lexicographically newest BENCH_*.json in the repository root, which the
# date naming makes the chronologically newest — and exits 1 when any
# metric regressed by more than BENCH_GATE_PCT percent (default 10).
# Regression direction is metric-aware:
#
#   - per-op costs regress UPWARD: ns/op, B/op, allocs/op, and cost-like
#     custom metrics (ipc-loss, missed-errors);
#   - rates and gains regress DOWNWARD: */s throughputs (Mcycles/s),
#     speedup, mitf-gain, sdc-avf-reduction, commit-coverage;
#   - environment facts are never gated: workers, benchmarks.
#
# Snapshots are machine-local baselines: regenerate after a hardware
# change, don't compare across machines.
set -eu

# Snapshots live in the repository root regardless of where the script is
# invoked from; explicit file arguments stay relative to the caller's cwd.
repo_root=$(dirname "$0")/..

# parse FILE — emit "name metric value" triples from go-bench output, one
# per metric, with the -N proc suffix stripped so runs at different
# GOMAXPROCS still align.
parse() {
	awk '/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		for (i = 3; i + 1 <= NF; i += 2)
			printf "%s %s %s\n", name, $(i + 1), $i
	}' "$1"
}

# unparse FILE — recover the same triples from a snapshot JSON written by
# snapshot_json (one benchmark per line; this script owns both sides).
unparse() {
	awk '
	/^    "/ {
		line = $0
		sub(/^    "/, "", line)
		name = line
		sub(/".*/, "", name)
		sub(/^[^{]*\{/, "", line)
		sub(/\}.*$/, "", line)
		n = split(line, pairs, /, /)
		for (i = 1; i <= n; i++) {
			split(pairs[i], kv, /": /)
			metric = kv[1]
			sub(/^"/, "", metric)
			printf "%s %s %s\n", name, metric, kv[2]
		}
	}' "$1"
}

snapshot_json() {
	parse "$1" | sort | awk -v date="$(date +%Y-%m-%d)" '
	BEGIN { printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": {\n", date }
	{
		if ($1 != name) {
			if (name != "") printf "},\n"
			name = $1
			printf "    \"%s\": {", name
			first = 1
		}
		if (!first) printf ", "
		printf "\"%s\": %s", $2, $3
		first = 0
	}
	END { if (name != "") printf "}\n"; printf "  }\n}\n" }'
}

diff_triples() {
	# Join on (name, metric); report old, new and delta%.
	awk '
	NR == FNR { old[$1 " " $2] = $3; next }
	{
		key = $1 " " $2
		if (!(key in old)) next
		o = old[key] + 0
		n = $3 + 0
		delta = (o == 0) ? 0 : 100 * (n - o) / o
		printf "%-55s %-12s %14g %14g %+9.1f%%\n", $1, $2, o, n, delta
	}
	BEGIN { printf "%-55s %-12s %14s %14s %10s\n", "benchmark", "metric", "old", "new", "delta" }
	' "$1" "$2"
}

case "${1:-}" in
-snapshot)
	[ $# -eq 2 ] || { echo "usage: $0 -snapshot new.txt" >&2; exit 2; }
	snapshot_json "$2"
	;;
-gate)
	[ $# -eq 2 ] || [ $# -eq 3 ] || { echo "usage: $0 -gate new.txt [snapshot.json]" >&2; exit 2; }
	snap="${3:-}"
	if [ -z "$snap" ]; then
		snap=$(ls "$repo_root"/BENCH_*.json 2>/dev/null | sort | tail -1 || true)
	fi
	if [ -z "$snap" ]; then
		echo "benchdiff: no BENCH_*.json snapshot to gate against; bootstrap one with:" >&2
		echo "  scripts/benchdiff.sh -snapshot <bench-output> > BENCH_\$(date +%F).json" >&2
		exit 1
	fi
	old_tmp=$(mktemp)
	new_tmp=$(mktemp)
	trap 'rm -f "$old_tmp" "$new_tmp"' EXIT
	unparse "$snap" | sort > "$old_tmp"
	parse "$2" | sort > "$new_tmp"
	diff_triples "$old_tmp" "$new_tmp"
	awk -v pct="${BENCH_GATE_PCT:-10}" -v snap="$snap" '
	# worse_sign(metric): +1 when the metric regresses upward (a cost),
	# -1 when it regresses downward (a rate or gain), 0 to exempt it.
	function worse_sign(m) {
		if (m ~ /\/s$/) return -1
		if (m == "speedup" || m == "mitf-gain") return -1
		if (m == "sdc-avf-reduction" || m == "commit-coverage") return -1
		if (m == "workers" || m == "benchmarks") return 0
		return 1  # ns/op, B/op, allocs/op, ipc-loss, missed-errors, ...
	}
	NR == FNR { old[$1 " " $2] = $3; next }
	{
		key = $1 " " $2
		if (!(key in old)) next
		o = old[key] + 0
		n = $3 + 0
		if (o == 0) next
		delta = 100 * (n - o) / o
		worse = worse_sign($2) * delta
		if (worse > pct) {
			printf "REGRESSION %s %s: %g -> %g (%+.1f%%, gate %g%%)\n", $1, $2, o, n, delta, pct
			bad = 1
		}
	}
	END {
		if (bad) {
			printf "benchdiff: performance regressed past the %g%% gate vs %s\n", pct, snap
			printf "benchdiff: if the change is deliberate, refresh the snapshot:\n"
			printf "  scripts/benchdiff.sh -snapshot <bench-output> > BENCH_$(date +%%F).json\n"
			exit 1
		}
		printf "benchdiff: within the %g%% gate vs %s\n", pct, snap
	}
	' "$old_tmp" "$new_tmp"
	;;
*)
	[ $# -eq 2 ] || { echo "usage: $0 [-snapshot|-gate] ... (see header comment)" >&2; exit 2; }
	old_tmp=$(mktemp)
	new_tmp=$(mktemp)
	trap 'rm -f "$old_tmp" "$new_tmp"' EXIT
	parse "$1" > "$old_tmp"
	parse "$2" > "$new_tmp"
	diff_triples "$old_tmp" "$new_tmp"
	;;
esac
