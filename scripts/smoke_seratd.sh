#!/bin/sh
# Smoke test for the seratd daemon: boot it on an ephemeral port, check
# /healthz answers ok, serve one cached evaluation, then SIGINT it and
# require a clean drain (exit 0). Exercises the real binary and signal
# path that the in-process httptest suite cannot.
set -eu

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/seratd" ./cmd/seratd
"$workdir/seratd" -addr 127.0.0.1:0 -portfile "$workdir/port" \
	-checkpoint "$workdir/ck" >"$workdir/log" 2>&1 &
pid=$!

# Wait for the daemon to publish its bound address.
for i in $(seq 1 100); do
	[ -s "$workdir/port" ] && break
	kill -0 "$pid" 2>/dev/null || { cat "$workdir/log"; echo "seratd died" >&2; exit 1; }
	sleep 0.1
done
[ -s "$workdir/port" ] || { echo "seratd never wrote -portfile" >&2; exit 1; }
addr=$(cat "$workdir/port")

fetch() { # fetch PATH [POST-BODY] — stdlib-only HTTP client, no curl needed
	go run ./scripts/httpget "http://$addr$1" "${2:-}"
}

# Health, one eval miss, its byte-identical hit.
fetch /healthz | grep -q '^ok$'
body='{"experiment":"table1","benches":["gzip-graphic","ammp"],"commits":8000}'
fetch /v1/eval "$body" >"$workdir/miss"
fetch /v1/eval "$body" >"$workdir/hit"
cmp "$workdir/miss" "$workdir/hit"
grep -q 'no squashing' "$workdir/miss"

# SIGINT must drain and exit 0.
kill -INT "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 300 ] && { cat "$workdir/log"; echo "seratd did not exit after SIGINT" >&2; exit 1; }
	sleep 0.1
done
wait "$pid" || { cat "$workdir/log"; echo "seratd exited non-zero" >&2; exit 1; }
grep -q 'drained' "$workdir/log"
trap 'rm -rf "$workdir"' EXIT
echo "seratd smoke: OK"
