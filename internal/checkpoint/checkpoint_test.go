package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	fp := Fingerprint("test", 42)
	f := New[int](path, "test", fp, 10)
	for _, i := range []int{0, 3, 9} {
		if err := f.Put(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}

	g, err := Load[int](path, "test", fp, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.CountDone() != 3 {
		t.Fatalf("CountDone = %d, want 3", g.CountDone())
	}
	for _, i := range []int{0, 3, 9} {
		v, ok := g.Get(i)
		if !ok || v != i*i {
			t.Errorf("Get(%d) = %d, %v; want %d, true", i, v, ok, i*i)
		}
	}
	if _, ok := g.Get(1); ok {
		t.Error("Get(1) reported a result for an incomplete cell")
	}
	if g.Done(1) || !g.Done(3) {
		t.Error("Done bitmap did not survive the roundtrip")
	}
}

func TestLoadRefusesMismatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	f := New[int](path, "sweep", Fingerprint("a"), 4)
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, kind, fp string
		total          int
		wantSub        string
	}{
		{"kind", "outcomes", Fingerprint("a"), 4, "snapshot"},
		{"fingerprint", "sweep", Fingerprint("b"), 4, "different campaign"},
		{"geometry", "sweep", Fingerprint("a"), 8, "geometry"},
	}
	for _, c := range cases {
		_, err := Load[int](path, c.kind, c.fp, c.total)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s mismatch: err = %v, want mention of %q", c.name, err, c.wantSub)
		}
	}
}

// TestLoadExplainsV1Snapshots pins the migration message: a v1 snapshot
// (FNV-1a fingerprints) cannot be validated against v2 state, and the error
// must say what to do about it, not just cite two numbers.
func TestLoadExplainsV1Snapshots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	v1 := `{"version":1,"kind":"sweep","fingerprint":"cafebabe12345678","done":{"n":4,"words":[0]},"cells":[0,0,0,0]}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load[int](path, "sweep", Fingerprint("a"), 4)
	if err == nil {
		t.Fatal("Load accepted a v1 snapshot")
	}
	for _, want := range []string{"checkpoint format v1, need v2", "re-run without -resume"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("v1 error %q does not mention %q", err, want)
		}
	}
	// Any other stale version still gets the generic refusal.
	v7 := strings.Replace(v1, `"version":1`, `"version":7`, 1)
	if err := os.WriteFile(path, []byte(v7), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load[int](path, "sweep", Fingerprint("a"), 4)
	if err == nil || !strings.Contains(err.Error(), "format version 7, want 2") {
		t.Errorf("v7 error = %v, want the generic version mismatch", err)
	}
}

func TestOpenRefusesClobberButResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	fp := Fingerprint("x")

	// resume with no file on disk starts fresh
	f, err := Open[int](path, "k", fp, 4, true)
	if err != nil {
		t.Fatalf("resume without snapshot: %v", err)
	}
	if err := f.Put(2, 7); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}

	// non-resume open must not clobber the existing snapshot
	if _, err := Open[int](path, "k", fp, 4, false); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("clobbering open: err = %v, want refusal pointing at -resume", err)
	}

	// resume picks the work back up
	g, err := Open[int](path, "k", fp, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := g.Get(2); !ok || v != 7 {
		t.Fatalf("resumed Get(2) = %d, %v; want 7, true", v, ok)
	}
}

func TestAutosaveInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	f := New[int](path, "k", "fp", 8)
	f.SetInterval(2)
	if err := f.Put(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("snapshot written before the autosave interval elapsed")
	}
	if err := f.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("autosave did not write the snapshot: %v", err)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	f := New[string](filepath.Join(dir, "camp.ckpt"), "k", "fp", 2)
	if err := f.Put(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "camp.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only camp.ckpt", names)
	}
}

func TestNilFileIsNoOpSink(t *testing.T) {
	var f *File[int]
	if f.Done(0) || f.CountDone() != 0 || f.Total() != 0 || f.Path() != "" {
		t.Error("nil File reported state")
	}
	if _, ok := f.Get(0); ok {
		t.Error("nil File returned a value")
	}
	if err := f.Put(0, 1); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	if err := f.Save(); err != nil {
		t.Errorf("nil Save: %v", err)
	}
	if err := f.Remove(); err != nil {
		t.Errorf("nil Remove: %v", err)
	}
	f.SetInterval(3)
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	f := New[int](path, "k", "fp", 1)
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("snapshot survived Remove")
	}
	if err := f.Remove(); err != nil {
		t.Fatalf("second Remove errored: %v", err)
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("sweep", 1, true)
	if a != Fingerprint("sweep", 1, true) {
		t.Error("Fingerprint is not deterministic")
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Errorf("Fingerprint %q is not a lowercase SHA-256 hex digest", a)
	}
	if a == Fingerprint("sweep", 1, false) {
		t.Error("Fingerprint ignored a differing part")
	}
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("Fingerprint concatenation is ambiguous across part boundaries")
	}
}
