package ace

import (
	"testing"

	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

func sbTrace(cycles uint64, cap int, log []isa.Inst, res []pipeline.Residency) *pipeline.Trace {
	return &pipeline.Trace{
		Cycles:         cycles,
		IQSize:         64,
		CommitLog:      log,
		StoreBuffer:    res,
		StoreBufferCap: cap,
	}
}

func TestStoreBufferLiveStoreFullyACE(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x100)
	b.load(isa.IntReg(5), 0x100) // keeps the store live (and load live-out)
	tr := sbTrace(100, 1, b.log, []pipeline.Residency{
		{Inst: b.log[st], Enq: 0, Evict: 10, Issued: true, Issue: 10},
	})
	r := AnalyzeStoreBuffer(tr, AnalyzeDeadness(b.log))
	if want := uint64(10 * SBEntryBits); r.ACEBC != want {
		t.Fatalf("live store ACEBC = %d, want %d", r.ACEBC, want)
	}
	if r.DeadDataBC != 0 {
		t.Fatal("live store should have no dead data")
	}
	if r.SDCAVF() != float64(10*SBEntryBits)/float64(r.TotalBC()) {
		t.Fatal("SDC AVF arithmetic wrong")
	}
}

func TestStoreBufferDeadStoreSplit(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x200)
	b.store(isa.IntReg(2), 0x200) // overwrite unread: st is FDD-mem
	tr := sbTrace(100, 1, b.log, []pipeline.Residency{
		{Inst: b.log[st], Enq: 0, Evict: 10, Issued: true, Issue: 10},
	})
	r := AnalyzeStoreBuffer(tr, AnalyzeDeadness(b.log))
	if want := uint64(10 * SBAddrBits); r.ACEBC != want {
		t.Fatalf("dead store ACEBC = %d, want %d (address bits stay ACE)", r.ACEBC, want)
	}
	if want := uint64(10 * SBDataBits); r.DeadDataBC != want {
		t.Fatalf("dead store DeadDataBC = %d, want %d", r.DeadDataBC, want)
	}
	if r.FalseDUEAVF() <= 0 {
		t.Fatal("dead store data should be a false-DUE source")
	}
}

func TestStoreBufferEmpty(t *testing.T) {
	r := AnalyzeStoreBuffer(sbTrace(100, 4, nil, nil), AnalyzeDeadness(nil))
	if r.IdleFraction() != 1 || r.SDCAVF() != 0 {
		t.Fatalf("empty buffer should be fully idle: %+v", r)
	}
	zero := AnalyzeStoreBuffer(&pipeline.Trace{}, AnalyzeDeadness(nil))
	if zero.SDCAVF() != 0 || zero.DUEAVF() != 0 {
		t.Fatal("zero-capacity buffer should report zero AVFs")
	}
}

func TestStoreBufferIntegration(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	tr := p.Run(20000, true)
	dead := AnalyzeDeadness(tr.CommitLog)
	r := AnalyzeStoreBuffer(tr, dead)
	if r.SDCAVF() <= 0 || r.SDCAVF() >= 1 {
		t.Fatalf("store-buffer SDC AVF = %v out of (0,1)", r.SDCAVF())
	}
	if r.FalseDUEAVF() <= 0 {
		t.Fatal("mixed workload should produce dead store data in the buffer")
	}
	if sum := r.ACEBC + r.DeadDataBC + r.IdleBC; sum != r.TotalBC() {
		t.Fatalf("classes sum to %d, want %d", sum, r.TotalBC())
	}
}
