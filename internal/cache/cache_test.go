package cache

import (
	"testing"
	"testing/quick"

	"softerror/internal/rng"
)

func smallCfg() Config {
	return Config{Name: "t", Size: 1 << 10, LineSize: 64, Assoc: 2, HitLatency: 2}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "line", Size: 1024, LineSize: 48, Assoc: 2},       // non-pow2 line
		{Name: "div", Size: 1000, LineSize: 64, Assoc: 2},        // not divisible
		{Name: "sets", Size: 64 * 2 * 3, LineSize: 64, Assoc: 2}, // 3 sets
		{Name: "lat", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: -1},
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %q should be rejected", cfg.Name)
		}
	}
	if _, err := NewCache(smallCfg()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestProtectionString(t *testing.T) {
	if ProtNone.String() != "none" || ProtParity.String() != "parity" || ProtECC.String() != "ecc" {
		t.Error("protection names wrong")
	}
	if Protection(9).String() == "" {
		t.Error("unknown protection should still render")
	}
}

func TestMissThenHit(t *testing.T) {
	c, _ := NewCache(smallCfg())
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatal("access after fill missed")
	}
	// Same line, different offset.
	if !c.Access(0x1000+32, false) {
		t.Fatal("same-line access missed")
	}
	// Different line.
	if c.Access(0x1000+64, false) {
		t.Fatal("next-line access hit without fill")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 4/2/2", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache: lines A, B map to same set; touching A then filling C
	// must evict B.
	cfg := smallCfg() // 1KB / 64B / 2-way = 8 sets
	c, _ := NewCache(cfg)
	setStride := uint64(8 * 64) // same set every 512 bytes
	a, b, x := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Fill(a, false)
	c.Access(b, false)
	c.Fill(b, false)
	if !c.Access(a, false) { // make A most recent
		t.Fatal("A should hit")
	}
	ev, evicted := c.Fill(x, false)
	if !evicted {
		t.Fatal("fill into full set did not evict")
	}
	if ev.LineAddr != b {
		t.Fatalf("evicted %#x, want LRU line %#x", ev.LineAddr, b)
	}
	if !c.Access(a, false) || !c.Access(x, false) {
		t.Fatal("A and X should be resident")
	}
	if c.Access(b, false) {
		t.Fatal("B should have been evicted")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	cfg := smallCfg()
	c, _ := NewCache(cfg)
	setStride := uint64(8 * 64)
	c.Fill(0, true) // dirty
	c.Fill(setStride, false)
	ev, evicted := c.Fill(2*setStride, false)
	if !evicted || !ev.Dirty {
		t.Fatalf("expected dirty eviction, got %+v evicted=%v", ev, evicted)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c, _ := NewCache(smallCfg())
	c.Fill(0x40, false)
	c.Access(0x40, true)
	if _, dirty, _ := c.Lookup(0x40); !dirty {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestDoubleFillRefreshes(t *testing.T) {
	c, _ := NewCache(smallCfg())
	c.Fill(0x80, false)
	ev, evicted := c.Fill(0x80, true)
	if evicted {
		t.Fatalf("double fill evicted %+v", ev)
	}
	if _, dirty, _ := c.Lookup(0x80); !dirty {
		t.Fatal("double fill with write did not mark dirty")
	}
}

func TestPiBits(t *testing.T) {
	cfg := smallCfg()
	cfg.PiBits = true
	c, _ := NewCache(cfg)
	if c.SetPi(0x100, true) {
		t.Fatal("SetPi on absent line succeeded")
	}
	c.Fill(0x100, true)
	if !c.SetPi(0x100, true) {
		t.Fatal("SetPi on resident line failed")
	}
	pi, ok := c.Pi(0x100)
	if !ok || !pi {
		t.Fatalf("Pi = %v,%v, want true,true", pi, ok)
	}
	// π travels with the eviction record.
	setStride := uint64(8 * 64)
	c.Fill(0x100+setStride, false)
	ev, evicted := c.Fill(0x100+2*setStride, false)
	if !evicted || !ev.Pi {
		t.Fatalf("π bit lost on eviction: %+v", ev)
	}
}

func TestPiDisabled(t *testing.T) {
	c, _ := NewCache(smallCfg())
	c.Fill(0x100, false)
	if c.SetPi(0x100, true) {
		t.Fatal("SetPi succeeded on π-less cache")
	}
	if _, ok := c.Pi(0x100); ok {
		t.Fatal("Pi read succeeded on π-less cache")
	}
}

func TestFlush(t *testing.T) {
	c, _ := NewCache(smallCfg())
	c.Fill(0, true)
	c.Fill(64, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush returned %d dirty lines, want 1", dirty)
	}
	if c.Access(0, false) || c.Access(64, false) {
		t.Fatal("lines resident after flush")
	}
}

func TestResidencyInvariant(t *testing.T) {
	// Property: immediately after Fill(addr), Lookup(addr) finds the line;
	// and an access stream never makes the cache hold more distinct lines
	// than its capacity.
	c, _ := NewCache(smallCfg())
	capacityLines := c.Config().Size / c.Config().LineSize
	f := func(addrs []uint16) bool {
		for _, a16 := range addrs {
			addr := uint64(a16) * 8
			if !c.Access(addr, false) {
				c.Fill(addr, false)
			}
			if found, _, _ := c.Lookup(addr); !found {
				return false
			}
		}
		resident := 0
		for s := range c.sets {
			for i := range c.sets[s] {
				if c.sets[s][i].valid {
					resident++
				}
			}
		}
		return resident <= capacityLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyDefaults(t *testing.T) {
	h := MustNewDefault()
	if h.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d, want 3", h.NumLevels())
	}
	if h.Level(LevelL0).Config().Size != 8<<10 {
		t.Error("L0 size wrong")
	}
	if h.Level(LevelL2).Config().Protection != ProtECC {
		t.Error("L2 should be ECC protected")
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h := MustNewDefault()
	r := h.Access(0x1234, false)
	if r.Level != LevelMemory {
		t.Fatalf("cold access level = %v, want memory", r.Level)
	}
	if r.Latency != 200 {
		t.Fatalf("cold access latency = %d, want 200", r.Latency)
	}
	// All levels now hold the line.
	for i := 0; i < h.NumLevels(); i++ {
		if found, _, _ := h.Level(i).Lookup(0x1234); !found {
			t.Fatalf("level %s missing line after inclusive fill", LevelName(i))
		}
	}
	r = h.Access(0x1234, false)
	if r.Level != LevelL0 || r.Latency != 2 {
		t.Fatalf("warm access = %+v, want L0/2", r)
	}
}

func TestHierarchyMidLevelHitFillsInner(t *testing.T) {
	h := MustNewDefault()
	h.Access(0x9000, false) // fills all levels
	// Evict from L0 by filling conflicting lines; L0 is 4-way, 32 sets.
	l0 := h.Level(LevelL0)
	setStride := uint64(l0.Config().Size / l0.Config().Assoc)
	for i := 1; i <= 4; i++ {
		h.Access(0x9000+uint64(i)*setStride, false)
	}
	if found, _, _ := l0.Lookup(0x9000); found {
		t.Skip("conflict stream did not evict; geometry changed")
	}
	r := h.Access(0x9000, false)
	if r.Level != LevelL1 {
		t.Fatalf("expected L1 hit after L0 eviction, got %s", LevelName(r.Level))
	}
	if r.Latency != 10 {
		t.Fatalf("L1 hit latency = %d, want 10", r.Latency)
	}
	if found, _, _ := l0.Lookup(0x9000); !found {
		t.Fatal("L1 hit did not refill L0")
	}
}

func TestMissedLevelPredicate(t *testing.T) {
	cases := []struct {
		level  int
		missL0 bool
		missL1 bool
	}{
		{LevelL0, false, false},
		{LevelL1, true, false},
		{LevelL2, true, true},
		{LevelMemory, true, true},
	}
	for _, c := range cases {
		r := AccessResult{Level: c.level}
		if r.MissedLevel(LevelL0) != c.missL0 {
			t.Errorf("level %s: MissedLevel(L0) = %v", LevelName(c.level), r.MissedLevel(LevelL0))
		}
		if r.MissedLevel(LevelL1) != c.missL1 {
			t.Errorf("level %s: MissedLevel(L1) = %v", LevelName(c.level), r.MissedLevel(LevelL1))
		}
	}
}

func TestHierarchyWorkingSetBehaviour(t *testing.T) {
	// Addresses confined to 4KB must converge to L0 hits; addresses spread
	// over 64KB must hit mostly L1; addresses over 2MB mostly L2.
	h := MustNewDefault()
	s := rng.New(3, 3)
	regions := []struct {
		name  string
		size  int64
		level int
	}{
		{"hot-4KB", 4 << 10, LevelL0},
		{"warm-64KB", 64 << 10, LevelL1},
		{"big-2MB", 2 << 20, LevelL2},
	}
	for _, reg := range regions {
		// Warm up with a full sequential sweep so every line is resident,
		// then with random touches to settle LRU state.
		for a := int64(0); a < reg.size; a += 64 {
			h.Access(uint64(a), false)
		}
		for i := 0; i < 20000; i++ {
			h.Access(uint64(s.Int63n(reg.size))&^7, false)
		}
		hits := 0
		const probes = 20000
		for i := 0; i < probes; i++ {
			r := h.Access(uint64(s.Int63n(reg.size))&^7, false)
			if r.Level <= reg.level {
				hits++
			}
		}
		frac := float64(hits) / probes
		if frac < 0.85 {
			t.Errorf("%s: only %.2f of accesses serviced at %s or closer",
				reg.name, frac, LevelName(reg.level))
		}
	}
}

func TestHierarchyEvictionHook(t *testing.T) {
	h := MustNewDefault()
	var evictions []Eviction
	h.OnEvict = func(ev Eviction) { evictions = append(evictions, ev) }
	s := rng.New(7, 7)
	for i := 0; i < 5000; i++ {
		h.Access(uint64(s.Int63n(1<<20))&^7, true)
	}
	if len(evictions) == 0 {
		t.Fatal("no evictions observed from 1MB working set through 8KB L0")
	}
	for _, ev := range evictions {
		if ev.Level < 0 || ev.Level >= h.NumLevels() {
			t.Fatalf("eviction with bad level: %+v", ev)
		}
	}
}

func TestHierarchyPrefetchWarms(t *testing.T) {
	h := MustNewDefault()
	h.Prefetch(0x4000)
	r := h.Access(0x4000, false)
	if r.Level != LevelL0 {
		t.Fatalf("access after prefetch serviced at %s, want L0", LevelName(r.Level))
	}
}

func TestHierarchyPi(t *testing.T) {
	cfg := DefaultHierarchy()
	for i := range cfg.Levels {
		cfg.Levels[i].PiBits = true
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x8000, true)
	if !h.SetPi(0x8000, true) {
		t.Fatal("SetPi failed on resident line")
	}
	pi, ok := h.Pi(0x8000)
	if !ok || !pi {
		t.Fatalf("Pi = %v,%v after SetPi", pi, ok)
	}
}

func TestNewHierarchyRejects(t *testing.T) {
	if _, err := NewHierarchy(HierarchyConfig{MemLatency: 10}); err == nil {
		t.Error("empty hierarchy accepted")
	}
	cfg := DefaultHierarchy()
	cfg.MemLatency = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("zero memory latency accepted")
	}
	cfg = DefaultHierarchy()
	cfg.Levels[0].LineSize = 48
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad level config accepted")
	}
}

func TestLevelName(t *testing.T) {
	if LevelName(LevelL0) != "L0" || LevelName(LevelMemory) != "memory" {
		t.Error("level names wrong")
	}
	if LevelName(42) == "" {
		t.Error("unknown level should render")
	}
}

func BenchmarkHierarchyAccessHot(b *testing.B) {
	h := MustNewDefault()
	s := rng.New(1, 1)
	for i := 0; i < 10000; i++ {
		h.Access(uint64(s.Intn(4<<10))&^7, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(s.Intn(4<<10))&^7, false)
	}
}

func BenchmarkHierarchyAccessCold(b *testing.B) {
	h := MustNewDefault()
	s := rng.New(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(s.Int63n(1<<30))&^7, false)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	h := MustNewDefault()
	h.NextLinePrefetch = true
	line := uint64(h.Level(LevelL2).Config().LineSize)
	// A demand miss to memory prefetches the next line: the subsequent
	// access to it must hit in-cache.
	h.Access(0x6000_0000, false)
	if h.HWPrefetches() != 1 {
		t.Fatalf("HWPrefetches = %d, want 1", h.HWPrefetches())
	}
	r := h.Access(0x6000_0000+line, false)
	if r.Level == LevelMemory {
		t.Fatal("next line not prefetched")
	}
	// Disabled by default.
	h2 := MustNewDefault()
	h2.Access(0x6000_0000, false)
	if h2.HWPrefetches() != 0 {
		t.Fatal("prefetcher ran while disabled")
	}
	r2 := h2.Access(0x6000_0000+line, false)
	if r2.Level != LevelMemory {
		t.Fatal("line resident without prefetcher")
	}
}

func TestNextLinePrefetcherStreaming(t *testing.T) {
	// A streaming sweep with the prefetcher on suffers roughly half the
	// memory accesses of the same sweep without it (every other line is
	// already inbound).
	sweep := func(pf bool) uint64 {
		h := MustNewDefault()
		h.NextLinePrefetch = pf
		for a := uint64(0x7000_0000); a < 0x7000_0000+1<<20; a += 128 {
			h.Access(a, false)
		}
		return h.MemAccesses()
	}
	base, with := sweep(false), sweep(true)
	if with >= base {
		t.Fatalf("prefetcher did not reduce memory accesses: %d vs %d", with, base)
	}
}
