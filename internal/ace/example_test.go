package ace_test

import (
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/isa"
)

// Dead-code discovery over a committed stream: the write to r5 is
// first-level dynamically dead (overwritten before any read), and the
// instruction feeding only that write is transitively dead.
func ExampleAnalyzeDeadness() {
	mk := func(class isa.Class, dest, src isa.Reg) isa.Inst {
		return isa.Inst{Class: class, Dest: dest, Src1: src,
			Src2: isa.RegNone, PredGuard: isa.RegNone}
	}
	log := []isa.Inst{
		mk(isa.ClassALU, isa.IntReg(4), isa.IntReg(1)), // seq 0: feeds only the dead write
		mk(isa.ClassALU, isa.IntReg(5), isa.IntReg(4)), // seq 1: overwritten before read
		mk(isa.ClassALU, isa.IntReg(5), isa.IntReg(2)), // seq 2: overwrites r5
		mk(isa.ClassALU, isa.IntReg(4), isa.IntReg(2)), // seq 3: overwrites r4
	}
	for i := range log {
		log[i].Seq = uint64(i)
	}
	dead := ace.AnalyzeDeadness(log)
	for i := range log {
		fmt.Printf("seq %d: %v\n", i, dead.Of(&log[i]))
	}
	// Output:
	// seq 0: tdd-reg
	// seq 1: fdd-reg
	// seq 2: ace
	// seq 3: ace
}

// Per-bit ground truth (§4.1): a dead instruction's destination-specifier
// bits stay ACE — corrupting them redirects the dead write onto a live
// register — while its other bits are benign.
func ExampleBitACE() {
	fmt.Println("dead, imm bit: ", ace.BitACE(ace.CatFDDReg, isa.FieldImm, true))
	fmt.Println("dead, dest bit:", ace.BitACE(ace.CatFDDReg, isa.FieldDest, true))
	fmt.Println("nop, opcode:   ", ace.BitACE(ace.CatNeutral, isa.FieldOpcode, false))
	fmt.Println("wrong path:    ", ace.BitACE(ace.CatWrongPath, isa.FieldOpcode, true))
	// Output:
	// dead, imm bit:  false
	// dead, dest bit: true
	// nop, opcode:    true
	// wrong path:     false
}

// Each un-ACE category maps to the cheapest π-bit mechanism covering it
// (Figure 2's deployment order).
func ExampleCategory_Track() {
	for _, c := range []ace.Category{
		ace.CatWrongPath, ace.CatNeutral, ace.CatFDDReg, ace.CatTDDReg, ace.CatFDDMem,
	} {
		fmt.Printf("%-10s -> %s\n", c, c.Track())
	}
	// Output:
	// wrong-path -> pi-commit
	// neutral    -> anti-pi
	// fdd-reg    -> pi-regfile
	// tdd-reg    -> pi-storebuf
	// fdd-mem    -> pi-memory
}
