package serate

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want ~%v", name, got, want)
	}
}

func TestMTTFYearConstant(t *testing.T) {
	// The paper: an MTBF of one year equals 114,155 FIT.
	approx(t, "MTTFYearFIT", MTTFYearFIT, 114155, 1e-4)
}

func TestFITMTTFRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		fit := FIT(float64(raw%1000000) + 1)
		back := FromMTTFYears(fit.MTTFYears())
		return math.Abs(float64(back-fit)) < 1e-6*float64(fit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroFITInfiniteMTTF(t *testing.T) {
	if !math.IsInf(FIT(0).MTTFYears(), 1) || !math.IsInf(FIT(0).MTTFHours(), 1) {
		t.Fatal("zero FIT should give infinite MTTF")
	}
	if !math.IsInf(float64(FromMTTFYears(0)), 1) {
		t.Fatal("zero MTTF should give infinite FIT")
	}
}

func TestRatesComposition(t *testing.T) {
	devices := []Device{
		{Name: "iq-unprotected", RawFIT: 100, SDCAVF: 0.29, DUEAVF: 0},
		{Name: "iq-parity", RawFIT: 100, SDCAVF: 0, DUEAVF: 0.62},
		{Name: "pc", RawFIT: 10, SDCAVF: 1.0, DUEAVF: 0},
		{Name: "bpred", RawFIT: 50, SDCAVF: 0, DUEAVF: 0},
	}
	sdc, due := Rates(devices)
	approx(t, "sdc", float64(sdc), 100*0.29+10, 1e-12)
	approx(t, "due", float64(due), 100*0.62, 1e-12)
}

func TestRatesEmpty(t *testing.T) {
	sdc, due := Rates(nil)
	if sdc != 0 || due != 0 {
		t.Fatal("empty device list should compose to zero rates")
	}
}

func TestMITFPaperExample(t *testing.T) {
	// §3.2: a 2 GHz processor with IPC 2 and a DUE MTTF of 10 years has a
	// DUE MITF of 1.3e18 instructions.
	mttfHours := 10 * 365.0 * 24
	got := MITF(2, 2e9, mttfHours)
	approx(t, "paper MITF example", got, 1.3e18, 0.03)
}

func TestMITFFromAVFConsistency(t *testing.T) {
	// MITFFromAVF must equal MITF with MTTF = 1/(raw*AVF).
	raw, avf := FIT(200), 0.3
	ipc, freq := 1.2, 2.5e9
	mttfHours := FIT(float64(raw) * avf).MTTFHours()
	want := MITF(ipc, freq, mttfHours)
	got := MITFFromAVF(ipc, freq, raw, avf)
	approx(t, "MITFFromAVF", got, want, 1e-12)
}

func TestMITFProportionalToIPCOverAVF(t *testing.T) {
	// At fixed frequency and raw rate, MITF ∝ IPC/AVF (§3.2): doubling
	// IPC/AVF doubles MITF.
	base := MITFFromAVF(1.0, 2.5e9, 100, 0.3)
	doubledIPC := MITFFromAVF(2.0, 2.5e9, 100, 0.3)
	halvedAVF := MITFFromAVF(1.0, 2.5e9, 100, 0.15)
	approx(t, "2x IPC", doubledIPC, 2*base, 1e-9)
	approx(t, "0.5x AVF", halvedAVF, 2*base, 1e-9)
}

func TestMeritTable1Shape(t *testing.T) {
	// Table 1's merit columns: squashing on L1 misses must raise IPC/AVF
	// when the AVF reduction outpaces the IPC loss.
	baseline := Merit(1.21, 0.29)
	squashL1 := Merit(1.19, 0.22)
	if squashL1 <= baseline {
		t.Fatalf("L1 squash merit %v should exceed baseline %v", squashL1, baseline)
	}
	// The paper reports +37% from unrounded AVFs; the rounded Table 1
	// values give ~+30%.
	gain := squashL1/baseline - 1
	if gain < 0.25 || gain > 0.45 {
		t.Fatalf("Table 1 SDC merit gain = %v, want in [0.25, 0.45]", gain)
	}
}

func TestMeritEdge(t *testing.T) {
	if !math.IsInf(Merit(1, 0), 1) {
		t.Fatal("zero AVF should give infinite merit")
	}
	if !math.IsInf(MITFFromAVF(1, 1e9, 0, 0.5), 1) {
		t.Fatal("zero raw rate should give infinite MITF")
	}
}

func TestFITString(t *testing.T) {
	s := FIT(114155).String()
	if !strings.Contains(s, "FIT") || !strings.Contains(s, "1.00 years") {
		t.Fatalf("FIT.String() = %q", s)
	}
}
