// Faultcampaign: reproduces Figure 1's outcome taxonomy empirically and
// cross-checks the Monte-Carlo estimates against the analytic ACE-based
// AVFs — the consistency argument behind the paper's methodology.
//
//	go run ./examples/faultcampaign
package main

import (
	"fmt"
	"log"
	"os"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/core"
	"softerror/internal/fault"
	"softerror/internal/report"
	"softerror/internal/spec"
)

func main() {
	bench, ok := spec.ByName("twolf")
	if !ok {
		log.Fatal("benchmark missing")
	}
	res, err := core.Run(core.Config{
		Workload:  bench.Params,
		Commits:   60_000,
		KeepTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	inj := fault.NewInjector(res.Trace, rep.Dead)
	const strikes = 120_000

	// Unprotected queue: faults either vanish or silently corrupt data.
	unprot, err := inj.Run(fault.Config{
		Protection: cache.ProtNone, Strikes: strikes, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Parity, conservative: every detected fault raises a machine check.
	parity, err := inj.Run(fault.Config{
		Protection: cache.ProtParity, Level: ace.TrackNever,
		Strikes: strikes, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	t := report.New(fmt.Sprintf("Figure 1 taxonomy on %s (%d strikes each)", bench.Name, strikes),
		"outcome", "unprotected", "parity")
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		t.AddRow(o.String(),
			report.Pct(unprot.Frac(o)), report.Pct(parity.Frac(o)))
	}
	t.Fprint(os.Stdout)

	fmt.Println("\nMonte-Carlo vs analytic (ACE) AVFs:")
	fmt.Printf("  SDC AVF:   injected %5.1f%%   analytic %5.1f%%\n",
		100*unprot.SDCFraction(), 100*rep.SDCAVF())
	fmt.Printf("  DUE AVF:   injected %5.1f%%   analytic %5.1f%%\n",
		100*parity.DUEFraction(), 100*rep.DUEAVF())
	fmt.Printf("  false DUE: injected %5.1f%%   analytic %5.1f%%\n",
		100*parity.FalseDUEFraction(), 100*rep.FalseDUEAVF())
	fmt.Println("\nnote how parity converts every SDC into a true DUE and additionally")
	fmt.Println("flags benign un-ACE faults as false DUEs — the paper's observation that")
	fmt.Println("adding error detection more than doubles the structure's error rate.")
}
