// Package workload synthesises dynamic instruction streams with
// statistically controlled properties, standing in for the SPEC CPU2000
// SimPoint slices the paper runs on its Asim Itanium®2 model.
//
// The architectural-vulnerability results in the paper are driven by
// workload *statistics* rather than by concrete program semantics: the mix
// of no-ops/prefetches (neutral instructions), the rate and depth of branch
// misprediction (wrong-path occupancy), the predicated-false fraction, the
// fraction of dynamically dead instructions (~20% across their binaries),
// and the cache-miss behaviour that determines how long instructions pool
// in the instruction queue. A Generator reproduces each of those properties
// from an explicit Params, seeded deterministically, so that the ACE
// analysis downstream discovers dead code, wrong paths and neutral
// instructions exactly the way the paper's analysis does — from the
// instruction stream itself.
package workload

import (
	"errors"
	"fmt"
)

// Params configures a synthetic workload. All *Frac fields are fractions of
// dynamic instructions in [0,1]; they need not sum to one — the remainder
// becomes live single-cycle integer ALU work.
type Params struct {
	// Name labels the workload in reports.
	Name string
	// FloatingPoint marks the workload as FP-dominated (affects reporting
	// groupings only; the instruction mix itself is set by the fields
	// below).
	FloatingPoint bool

	// Seed drives all stochastic choices for this workload.
	Seed uint64

	// Instruction mix. LoadFrac and StoreFrac are live memory operations;
	// FPFrac is live floating-point compute.
	LoadFrac  float64
	StoreFrac float64
	FPFrac    float64

	// IOFrac is the fraction of uncached I/O accesses (console writes,
	// device registers). I/O is where π-bits-through-memory must finally
	// signal (§4.3.3 design 4): values reaching a device are observable.
	IOFrac float64

	// Neutral instructions (the paper's second false-DUE source).
	NopFrac      float64
	PrefetchFrac float64
	HintFrac     float64

	// Control flow. BranchFrac is the fraction of dynamic conditional
	// branches; TakenProb their taken probability; MispredictRate the
	// fraction of branches fetched down the wrong path. CallFrac is the
	// fraction of dynamic call instructions (each paired with a return).
	BranchFrac     float64
	TakenProb      float64
	MispredictRate float64
	CallFrac       float64

	// Predication. PredicatedFrac of eligible ALU/FP instructions carry a
	// qualifying predicate; PredFalseProb of those evaluate false.
	PredicatedFrac float64
	PredFalseProb  float64

	// Dynamically dead instructions (the paper's third false-DUE source).
	// FDDRegFrac writes a register never read before overwrite; TDDRegFrac
	// feeds only dead consumers; DeadLocalFrac of per-procedure local
	// writes are left unread at return (dead via return); FDDMemFrac are
	// stores overwritten before any load.
	FDDRegFrac    float64
	TDDRegFrac    float64
	DeadLocalFrac float64
	FDDMemFrac    float64

	// Memory address stream: probability that a data access falls in each
	// working-set region. Region sizes are chosen so L0Frac hits the
	// 8KB L0, L1Frac the 256KB L1, L2Frac the 10MB L2, and MemFrac misses
	// everything. They are normalised internally.
	L0Frac  float64
	L1Frac  float64
	L2Frac  float64
	MemFrac float64

	// MissBurstiness is the probability that a data access stays in the
	// same non-hot working-set region as its predecessor, clustering cache
	// misses the way real reference streams do (a newly touched block
	// brings several misses together).
	MissBurstiness float64

	// FetchBubbleProb is the probability that a basic block starts with a
	// front-end delivery gap (instruction-cache miss, ITLB miss, or
	// dispersal break); FetchBubbleMean is the mean gap length in cycles
	// (geometric). Together they set the front end's sustainable delivery
	// bandwidth and therefore the instruction queue's idle fraction.
	FetchBubbleProb float64
	FetchBubbleMean int

	// BranchPredictor selects the front-end prediction model: "" or
	// "statistical" mispredicts at exactly MispredictRate; "gshare" and
	// "bimodal" use real table predictors (MispredictRate is then ignored
	// and the realised rate is organic).
	BranchPredictor string

	// MeanBlockLen is the mean instructions per basic block (geometric).
	MeanBlockLen int
	// MeanCalleeLen is the mean instructions executed per procedure call.
	MeanCalleeLen int
	// DepDistance is the mean distance (in producing instructions) between
	// a value's definition and its uses; smaller values create tighter
	// dependence chains and lower ILP.
	DepDistance int
	// LoadUseDistance is the minimum number of instructions between a load
	// and the first consumer of its result, modelling compiler load
	// hoisting: IA-64 compilers schedule consumers far from loads so that
	// first-level cache misses are fully hidden, while longer misses still
	// stall. 0 disables hoisting (consumers may follow immediately).
	LoadUseDistance int
}

// Validate reports a descriptive error for out-of-range parameters.
func (p *Params) Validate() error {
	type frac struct {
		name string
		v    float64
	}
	fracs := []frac{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac}, {"FPFrac", p.FPFrac},
		{"IOFrac", p.IOFrac},
		{"NopFrac", p.NopFrac}, {"PrefetchFrac", p.PrefetchFrac}, {"HintFrac", p.HintFrac},
		{"BranchFrac", p.BranchFrac}, {"TakenProb", p.TakenProb},
		{"MispredictRate", p.MispredictRate}, {"CallFrac", p.CallFrac},
		{"PredicatedFrac", p.PredicatedFrac}, {"PredFalseProb", p.PredFalseProb},
		{"FDDRegFrac", p.FDDRegFrac}, {"TDDRegFrac", p.TDDRegFrac},
		{"DeadLocalFrac", p.DeadLocalFrac}, {"FDDMemFrac", p.FDDMemFrac},
		{"L0Frac", p.L0Frac}, {"L1Frac", p.L1Frac}, {"L2Frac", p.L2Frac},
		{"MemFrac", p.MemFrac},
	}
	for _, f := range fracs {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload: %s = %v out of [0,1]", f.name, f.v)
		}
	}
	mix := p.LoadFrac + p.StoreFrac + p.FPFrac + p.IOFrac + p.NopFrac +
		p.PrefetchFrac + p.HintFrac + p.BranchFrac + p.CallFrac +
		p.FDDRegFrac + p.TDDRegFrac + p.FDDMemFrac
	if mix > 1 {
		return fmt.Errorf("workload: instruction mix fractions sum to %v > 1", mix)
	}
	if p.L0Frac+p.L1Frac+p.L2Frac+p.MemFrac <= 0 {
		return errors.New("workload: all working-set fractions are zero")
	}
	if p.MeanBlockLen < 1 {
		return fmt.Errorf("workload: MeanBlockLen = %d, want >= 1", p.MeanBlockLen)
	}
	if p.MeanCalleeLen < 1 {
		return fmt.Errorf("workload: MeanCalleeLen = %d, want >= 1", p.MeanCalleeLen)
	}
	if p.DepDistance < 1 {
		return fmt.Errorf("workload: DepDistance = %d, want >= 1", p.DepDistance)
	}
	if p.LoadUseDistance < 0 {
		return fmt.Errorf("workload: LoadUseDistance = %d, want >= 0", p.LoadUseDistance)
	}
	switch p.BranchPredictor {
	case "", "statistical", "gshare", "bimodal":
	default:
		return fmt.Errorf("workload: unknown BranchPredictor %q", p.BranchPredictor)
	}
	if p.MissBurstiness < 0 || p.MissBurstiness > 1 {
		return fmt.Errorf("workload: MissBurstiness = %v out of [0,1]", p.MissBurstiness)
	}
	if p.FetchBubbleProb < 0 || p.FetchBubbleProb > 1 {
		return fmt.Errorf("workload: FetchBubbleProb = %v out of [0,1]", p.FetchBubbleProb)
	}
	if p.FetchBubbleProb > 0 && p.FetchBubbleMean < 1 {
		return fmt.Errorf("workload: FetchBubbleMean = %d, want >= 1 when bubbles enabled", p.FetchBubbleMean)
	}
	return nil
}

// Default returns a mid-of-the-road integer workload whose statistics sit
// near the paper's cross-benchmark averages: ~20% dynamically dead
// instructions, ~25% neutral instructions, moderate miss rates.
func Default() Params {
	return Params{
		Name:            "default",
		Seed:            1,
		LoadFrac:        0.17,
		StoreFrac:       0.08,
		FPFrac:          0.05,
		IOFrac:          0.0005,
		NopFrac:         0.26,
		PrefetchFrac:    0.04,
		HintFrac:        0.01,
		BranchFrac:      0.08,
		TakenProb:       0.6,
		MispredictRate:  0.06,
		CallFrac:        0.01,
		PredicatedFrac:  0.15,
		PredFalseProb:   0.35,
		FDDRegFrac:      0.04,
		TDDRegFrac:      0.025,
		DeadLocalFrac:   0.25,
		FDDMemFrac:      0.02,
		L0Frac:          0.9862,
		L1Frac:          0.0088,
		L2Frac:          0.0045,
		MemFrac:         0.0005,
		MissBurstiness:  0.75,
		FetchBubbleProb: 0.18,
		FetchBubbleMean: 3,
		MeanBlockLen:    8,
		MeanCalleeLen:   40,
		DepDistance:     5,
		LoadUseDistance: 16,
	}
}
