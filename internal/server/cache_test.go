package server

import (
	"fmt"
	"testing"
)

// TestCacheDisabledDropsEveryPut pins the NewCache contract: maxBytes <= 0
// disables caching entirely. Before the fix, zero-length bodies slipped the
// size check at max == 0 and grew items unboundedly.
func TestCacheDisabledDropsEveryPut(t *testing.T) {
	for _, max := range []int64{0, -1} {
		c := NewCache(max)
		for i := 0; i < 100; i++ {
			c.Put(fmt.Sprintf("key-%d", i), "text/plain", nil)
			c.Put(fmt.Sprintf("body-%d", i), "text/plain", []byte("payload"))
		}
		if n := c.Len(); n != 0 {
			t.Fatalf("disabled cache (max=%d) holds %d entries, want 0", max, n)
		}
		if b := c.Bytes(); b != 0 {
			t.Fatalf("disabled cache (max=%d) holds %d bytes, want 0", max, b)
		}
		if _, _, ok := c.Get("key-0"); ok {
			t.Fatalf("disabled cache (max=%d) served a hit", max)
		}
	}
}
