package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzSweepRequest drives arbitrary JSON through the sweep submission
// surface: decode (with the handler's unknown-field strictness) then
// buildGrid. Accepted requests must yield a bounded, positively-sized grid
// with sane axes and a deterministic fingerprint; everything else must be
// a clean error, never a panic and never an unbounded campaign.
func FuzzSweepRequest(f *testing.F) {
	f.Add([]byte(`{"policies":["baseline"]}`))
	f.Add([]byte(`{"benches":["gzip-graphic","mcf"],"policies":["baseline","squash-l1"],"iqsizes":[16,64],"ooo":[false,true],"commits":5000}`))
	f.Add([]byte(`{"policies":["baseline"],"onerror":"continue","tasktimeout":"30s","retries":2}`))
	f.Add([]byte(`{"policies":["nope"]}`))
	f.Add([]byte(`{"policies":[]}`))
	f.Add([]byte(`{"benches":["not-a-benchmark"],"policies":["baseline"]}`))
	f.Add([]byte(`{"policies":["baseline"],"tasktimeout":"not-a-duration"}`))
	f.Add([]byte(`{"policies":["baseline"],"iqsizes":[0]}`))
	f.Add([]byte(`{"policies":["baseline"],"iqsizes":[-4]}`))
	f.Add([]byte(`{"policies":["baseline"],"retries":-1}`))
	f.Add([]byte(`{"policies":["baseline"],"unknown":1}`))
	f.Add([]byte(`[]`))

	s := New(Config{Workers: 2})
	f.Cleanup(s.Close)
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SweepRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		g, err := s.buildGrid(req)
		if err != nil {
			return
		}
		if n := g.Size(); n < 1 || n > maxSweepCells {
			t.Fatalf("accepted grid spans %d cells (cap %d)", n, maxSweepCells)
		}
		if len(g.Benches) == 0 || len(g.Policies) == 0 || len(g.IQSizes) == 0 || len(g.OutOfOrder) == 0 {
			t.Fatalf("accepted grid has an empty axis: %+v", g)
		}
		for _, iq := range g.IQSizes {
			if iq < 1 {
				t.Fatalf("accepted non-positive IQ size %d", iq)
			}
		}
		if g.Retries < 0 {
			t.Fatalf("accepted negative retries %d", g.Retries)
		}
		fp := g.Fingerprint()
		g2, err := s.buildGrid(req)
		if err != nil {
			t.Fatalf("rebuilding an accepted request failed: %v", err)
		}
		if fp2 := g2.Fingerprint(); fp2 != fp {
			t.Fatalf("fingerprint not deterministic: %s vs %s", fp, fp2)
		}
	})
}

// jobsRequest builds a GET request for a fuzzed target, reporting targets
// the request constructor itself cannot represent (httptest.NewRequest
// panics on them) as errors — those are out of routing's scope.
func jobsRequest(target string) (req *http.Request, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("unroutable target: %v", r)
		}
	}()
	return httptest.NewRequest(http.MethodGet, target, nil), nil
}

// FuzzJobPath drives arbitrary {id} segments through the /v1/jobs routes.
// With no jobs registered, every routable target must resolve to a clean
// 301 (path normalisation), 400 (bad query) or 404 — never a 2xx, never a
// 5xx, never a panic, regardless of traversal sequences, escapes or
// control bytes in the id.
func FuzzJobPath(f *testing.F) {
	f.Add("job-000001", 0)
	f.Add("job-000001", 1)
	f.Add("job-000001", 2)
	f.Add("", 0)
	f.Add("../../healthz", 0)
	f.Add("..%2f..%2fhealthz", 0)
	f.Add("job-000001%00", 2)
	f.Add("job-000001/extra", 1)
	f.Add("job-000001?after=x", 1)
	f.Add("%", 0)

	s := New(Config{Workers: 2})
	f.Cleanup(s.Close)
	f.Fuzz(func(t *testing.T, id string, route int) {
		suffix := [...]string{"", "/events", "/csv"}[((route%3)+3)%3]
		req, err := jobsRequest("/v1/jobs/" + id + suffix)
		if err != nil {
			return
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusMovedPermanently, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("GET /v1/jobs/%q%s = %d with no jobs registered; body: %.200s",
				id, suffix, w.Code, w.Body.String())
		}
	})
}
