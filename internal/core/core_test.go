package core

import (
	"math"
	"strings"
	"testing"

	"softerror/internal/ace"
	"softerror/internal/fault"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// testSuite keeps runs small: four contrasting benchmarks, short commits.
func testSuite(t testing.TB) *Suite {
	t.Helper()
	pick := []string{"gzip-graphic", "mcf", "ammp", "sixtrack"}
	var benches []spec.Benchmark
	for _, name := range pick {
		b, ok := spec.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		benches = append(benches, b)
	}
	return NewSuite(benches, 30_000)
}

func TestPolicyStringsAndApply(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		if p.String() == "" {
			t.Errorf("policy %d has no name", p)
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should render")
	}
	if !strings.Contains(PolicySquashL1.String(), "L1") {
		t.Error("squash-L1 name should mention L1")
	}
}

func TestRunDefaultsAndValidation(t *testing.T) {
	p := workload.Default()
	p.MeanBlockLen = 0
	if _, err := Run(Config{Workload: p}); err == nil {
		t.Fatal("invalid workload accepted")
	}
	res, err := Run(Config{Workload: workload.Default(), Commits: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Report == nil {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Trace != nil {
		t.Fatal("trace retained without KeepTrace")
	}
	kept, err := Run(Config{Workload: workload.Default(), Commits: 5000, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if kept.Trace == nil {
		t.Fatal("KeepTrace did not retain the trace")
	}
}

func TestSuiteMemoises(t *testing.T) {
	s := testSuite(t)
	b := s.Benches[0]
	r1, err := s.Result(b, PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Result(b, PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("suite did not memoise")
	}
}

func TestTable1Shape(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table1 has %d rows, want 3", len(rows))
	}
	base, l1, l0 := rows[0], rows[1], rows[2]

	// The paper's Table-1 shape: squashing reduces both AVFs; the L0
	// trigger reduces them further but costs distinctly more IPC; the L1
	// trigger's merit (MITF proxy) improves on the baseline.
	if !(l1.SDCAVF < base.SDCAVF && l0.SDCAVF < l1.SDCAVF) {
		t.Errorf("SDC AVF ordering wrong: %.3f, %.3f, %.3f", base.SDCAVF, l1.SDCAVF, l0.SDCAVF)
	}
	if !(l1.DUEAVF < base.DUEAVF && l0.DUEAVF < l1.DUEAVF) {
		t.Errorf("DUE AVF ordering wrong: %.3f, %.3f, %.3f", base.DUEAVF, l1.DUEAVF, l0.DUEAVF)
	}
	if l0.IPC >= l1.IPC {
		t.Errorf("L0 squashing should cost more IPC than L1: %.3f vs %.3f", l0.IPC, l1.IPC)
	}
	l1Loss := 1 - l1.IPC/base.IPC
	l0Loss := 1 - l0.IPC/base.IPC
	// The 4-benchmark test subset over-weights memory-bound codes (mcf,
	// ammp); the full-roster loss is ~2% but allow up to 10% here.
	if l1Loss > 0.10 {
		t.Errorf("L1 squash IPC loss %.1f%%, want small", l1Loss*100)
	}
	if l0Loss < 2*l1Loss {
		t.Errorf("L0 squash IPC loss (%.1f%%) should clearly exceed L1's (%.1f%%)",
			l0Loss*100, l1Loss*100)
	}
	if l1.MeritSDC <= base.MeritSDC {
		t.Errorf("L1 squash merit %.2f should beat baseline %.2f", l1.MeritSDC, base.MeritSDC)
	}
	// DUE AVF must exceed SDC AVF everywhere (false DUE adds to true).
	for _, r := range rows {
		if r.DUEAVF <= r.SDCAVF {
			t.Errorf("%v: DUE %.3f <= SDC %.3f", r.Policy, r.DUEAVF, r.SDCAVF)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Figure2(512)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Benches) {
		t.Fatalf("Figure2 rows = %d, want %d", len(rows), len(s.Benches))
	}
	for _, r := range rows {
		if r.BaseFalseDUE <= 0 {
			t.Errorf("%s: no false DUE", r.Bench)
		}
		prev := r.BaseFalseDUE
		for i, rem := range r.Remaining {
			if rem > prev+1e-12 {
				t.Errorf("%s: remaining false DUE increased at level %d", r.Bench, i)
			}
			prev = rem
		}
		if last := r.Remaining[len(r.Remaining)-1]; last != 0 {
			t.Errorf("%s: full stack leaves %.4f false DUE, want 0", r.Bench, last)
		}
		if r.CoveredFrac(len(r.Remaining)-1) != 1 {
			t.Errorf("%s: full coverage fraction != 1", r.Bench)
		}
	}
	// FP benchmarks get more of their coverage from the anti-π bit than
	// integer ones (the paper: 60% vs 35%).
	fp, intg := true, false
	fpMean := Figure2Mean(rows, &fp)
	intMean := Figure2Mean(rows, &intg)
	fpAnti := fpMean.CoveredFrac(1) - fpMean.CoveredFrac(0)
	intAnti := intMean.CoveredFrac(1) - intMean.CoveredFrac(0)
	if fpAnti <= intAnti {
		t.Errorf("anti-π coverage: FP %.3f should exceed INT %.3f", fpAnti, intAnti)
	}
	// Integer benchmarks get more from π-to-commit (wrong path).
	if intMean.CoveredFrac(0) <= fpMean.CoveredFrac(0) {
		t.Errorf("π-to-commit coverage: INT %.3f should exceed FP %.3f",
			intMean.CoveredFrac(0), fpMean.CoveredFrac(0))
	}
}

func TestFigure2MeanEmpty(t *testing.T) {
	if m := Figure2Mean(nil, nil); m.BaseFalseDUE != 0 {
		t.Fatal("empty mean should be zero")
	}
}

func TestFigure3Shape(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Figure3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultPETSizes) {
		t.Fatalf("Figure3 rows = %d, want %d", len(rows), len(DefaultPETSizes))
	}
	prev := Figure3Row{}
	for i, r := range rows {
		// Coverage is monotone in buffer size...
		if i > 0 && (r.FDDReg < prev.FDDReg || r.WithReturns < prev.WithReturns || r.WithMemory < prev.WithMemory) {
			t.Errorf("coverage not monotone at %d entries", r.Entries)
		}
		// ...and within [0,1].
		for _, v := range []float64{r.FDDReg, r.WithReturns, r.WithMemory} {
			if v < 0 || v > 1 {
				t.Errorf("coverage %v out of range at %d entries", v, r.Entries)
			}
		}
		prev = r
	}
	// The paper: a 512-entry PET covers a minority of FDD instructions;
	// ~10k entries cover most of them (returns make the difference).
	var at512, at16k Figure3Row
	for _, r := range rows {
		if r.Entries == 512 {
			at512 = r
		}
		if r.Entries == 16384 {
			at16k = r
		}
	}
	if at512.FDDReg < 0.05 || at512.FDDReg > 0.80 {
		t.Errorf("512-entry PET covers %.2f of FDD-reg, want a partial fraction", at512.FDDReg)
	}
	if at16k.WithReturns < 0.75 {
		t.Errorf("16k-entry PET with returns covers only %.2f, want most", at16k.WithReturns)
	}
	if at512.WithReturns > at512.FDDReg+1e-12 == false && at16k.WithReturns <= at16k.FDDReg-1e-12 {
		t.Error("return-dead population should change the curve")
	}
}

func TestFigure4Shape(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	var relSDC, relDUE, relIPC []float64
	var ammp Figure4Row
	for _, r := range rows {
		if r.RelSDC <= 0 || r.RelSDC > 1.05 {
			t.Errorf("%s: RelSDC = %.3f out of range", r.Bench, r.RelSDC)
		}
		if r.RelDUE <= 0 || r.RelDUE > 1.05 {
			t.Errorf("%s: RelDUE = %.3f out of range", r.Bench, r.RelDUE)
		}
		relSDC = append(relSDC, r.RelSDC)
		relDUE = append(relDUE, r.RelDUE)
		relIPC = append(relIPC, r.RelIPC)
		if r.Bench == "ammp" {
			ammp = r
		}
	}
	// Combined techniques: DUE reduction must beat the SDC-only reduction
	// (π tracking removes the false component on top of squashing).
	if GeoMean(relDUE) >= GeoMean(relSDC) {
		t.Errorf("mean RelDUE %.3f should be below mean RelSDC %.3f",
			GeoMean(relDUE), GeoMean(relSDC))
	}
	// IPC cost stays small on average.
	if m := GeoMean(relIPC); m < 0.90 {
		t.Errorf("mean relative IPC %.3f, want > 0.90", m)
	}
	// ammp is the paper's squash outlier: far better than the average.
	if ammp.RelSDC >= GeoMean(relSDC) {
		t.Errorf("ammp RelSDC %.3f should beat the mean %.3f", ammp.RelSDC, GeoMean(relSDC))
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.Idle + r.NeverRead + r.ExACE + r.UnACE + r.ACE
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: occupancy classes sum to %.6f", r.Bench, sum)
		}
		if r.ACE <= 0 || r.Idle <= 0 {
			t.Errorf("%s: degenerate breakdown %+v", r.Bench, r)
		}
	}
}

func TestOutcomesCampaign(t *testing.T) {
	b, _ := spec.ByName("gzip-graphic")
	rows, err := Outcomes(b, 20_000, 5_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2+len(TrackingLevels) {
		t.Fatalf("Outcomes rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Strikes != 5000 {
			t.Errorf("%s: strikes = %d", r.Label, r.Strikes)
		}
		if r.Counts[fault.OutcomeMissedError] != 0 {
			t.Errorf("%s: missed errors present", r.Label)
		}
	}
	// Unprotected: no DUEs; parity: no SDC.
	unprot, parity := rows[0], rows[1]
	if unprot.Counts[fault.OutcomeTrueDUE]+unprot.Counts[fault.OutcomeFalseDUE] != 0 {
		t.Error("unprotected campaign signalled DUEs")
	}
	if parity.Counts[fault.OutcomeSDC] != 0 {
		t.Error("parity campaign produced SDC")
	}
	if unprot.Counts[fault.OutcomeSDC] == 0 {
		t.Error("unprotected campaign produced no SDC at all")
	}
}

func TestThrottleAblation(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ThrottleAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("ablation rows = %d, want 5", len(rows))
	}
	byPolicy := map[Policy]AblationRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	// The paper's finding (§3.1): throttling gives no significant AVF
	// reduction beyond squashing — squashing must beat it clearly, and
	// throttling must not make the AVF significantly worse than baseline.
	if byPolicy[PolicySquashL1].SDCAVF >= byPolicy[PolicyThrottleL1].SDCAVF {
		t.Errorf("squash-L1 SDC %.3f should beat throttle-L1 %.3f",
			byPolicy[PolicySquashL1].SDCAVF, byPolicy[PolicyThrottleL1].SDCAVF)
	}
	if byPolicy[PolicyThrottleL1].SDCAVF > byPolicy[PolicyBaseline].SDCAVF+0.03 {
		t.Errorf("throttle-L1 SDC %.3f should not exceed baseline %.3f by much",
			byPolicy[PolicyThrottleL1].SDCAVF, byPolicy[PolicyBaseline].SDCAVF)
	}
	if byPolicy[PolicySquashL0].SDCAVF >= byPolicy[PolicyThrottleL0].SDCAVF {
		t.Errorf("squash-L0 SDC %.3f should beat throttle-L0 %.3f",
			byPolicy[PolicySquashL0].SDCAVF, byPolicy[PolicyThrottleL0].SDCAVF)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Fatalf("GeoMean of non-positive values = %v", g)
	}
}

func TestDeadnessCompact(t *testing.T) {
	s := testSuite(t)
	r, err := s.Result(s.Benches[0], PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	// After Compact (done by the suite), Of falls back conservatively.
	var in = r.Report.Dead
	if in == nil {
		t.Fatal("no deadness on report")
	}
	_ = ace.CatACE // Of's fallback is exercised implicitly by reuse above
}
