package fault

import (
	"math"
	"testing"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/pibit"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// sharedTrace runs one moderate simulation reused across campaign tests.
var sharedTrace *pipeline.Trace
var sharedDead *ace.Deadness
var sharedReport *ace.Report

func setup(t testing.TB) (*pipeline.Trace, *ace.Deadness, *ace.Report) {
	t.Helper()
	if sharedTrace == nil {
		gen := workload.MustNew(workload.Default())
		mem := cache.MustNewDefault()
		workload.WarmCaches(mem)
		p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
		sharedTrace = p.Run(60000, true)
		sharedReport = ace.Analyze(sharedTrace)
		sharedDead = sharedReport.Dead
	}
	return sharedTrace, sharedDead, sharedReport
}

func TestRunRejectsBadConfig(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	if _, err := inj.Run(Config{Strikes: 0}); err == nil {
		t.Fatal("zero strikes accepted")
	}
	empty := NewInjector(&pipeline.Trace{IQSize: 4}, dead)
	if _, err := empty.Run(Config{Strikes: 10}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	cfg := Config{Protection: cache.ProtParity, Level: ace.TrackCommit, Strikes: 2000, Seed: 9}
	a, err := inj.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := inj.Run(cfg)
	if a.Counts != b.Counts {
		t.Fatalf("non-deterministic campaign: %v vs %v", a.Counts, b.Counts)
	}
}

func TestUnprotectedSDCMatchesAnalyticAVF(t *testing.T) {
	tr, dead, rep := setup(t)
	inj := NewInjector(tr, dead)
	res, err := inj.Run(Config{Protection: cache.ProtNone, Strikes: 60000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.SDCFraction(), rep.SDCAVF()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("Monte-Carlo SDC = %.4f, analytic AVF = %.4f", got, want)
	}
	if res.Counts[OutcomeFalseDUE]+res.Counts[OutcomeTrueDUE] != 0 {
		t.Fatal("unprotected queue cannot signal DUEs")
	}
}

func TestParityBaselineMatchesAnalyticDUE(t *testing.T) {
	tr, dead, rep := setup(t)
	inj := NewInjector(tr, dead)
	// Conservative baseline: any detected parity error is signalled.
	res, err := inj.Run(Config{Protection: cache.ProtParity, Level: ace.TrackNever, Strikes: 60000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DUEFraction()-rep.DUEAVF()) > 0.02 {
		t.Fatalf("Monte-Carlo DUE = %.4f, analytic = %.4f", res.DUEFraction(), rep.DUEAVF())
	}
	if math.Abs(res.FalseDUEFraction()-rep.FalseDUEAVF()) > 0.02 {
		t.Fatalf("Monte-Carlo false DUE = %.4f, analytic = %.4f",
			res.FalseDUEFraction(), rep.FalseDUEAVF())
	}
	if res.Counts[OutcomeSDC] != 0 {
		t.Fatal("parity queue cannot produce SDC under single-bit faults")
	}
}

func TestTrackingNeverSuppressesTrueErrors(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	for lvl := ace.TrackNever; lvl <= ace.TrackMemory; lvl++ {
		res, err := inj.Run(Config{Protection: cache.ProtParity, Level: lvl, Strikes: 20000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[OutcomeMissedError] != 0 {
			t.Fatalf("level %v suppressed %d true errors", lvl, res.Counts[OutcomeMissedError])
		}
	}
}

func TestFalseDUEMonotoneInLevel(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	prev := math.Inf(1)
	for lvl := ace.TrackNever; lvl <= ace.TrackMemory; lvl++ {
		res, err := inj.Run(Config{Protection: cache.ProtParity, Level: lvl, Strikes: 40000, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		f := res.FalseDUEFraction()
		if f > prev+0.01 {
			t.Fatalf("false DUE increased at level %v: %.4f -> %.4f", lvl, prev, f)
		}
		prev = f
	}
	if prev > 0.01 {
		t.Fatalf("full memory tracking left %.4f false DUE, want ~0", prev)
	}
}

func TestTrueDUEPreservedAcrossLevels(t *testing.T) {
	// Tracking may defer true errors (latent) but must never lose them to
	// SDC; true DUE + latent-from-ACE stays roughly stable.
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	base, _ := inj.Run(Config{Protection: cache.ProtParity, Level: ace.TrackNever, Strikes: 40000, Seed: 5})
	full, _ := inj.Run(Config{Protection: cache.ProtParity, Level: ace.TrackMemory, Strikes: 40000, Seed: 5})
	baseTrue := base.Frac(OutcomeTrueDUE)
	fullTrue := full.Frac(OutcomeTrueDUE) + full.Frac(OutcomeLatent)
	if fullTrue < baseTrue-0.02 {
		t.Fatalf("true-error accounting shrank: baseline %.4f, full tracking true+latent %.4f",
			baseTrue, fullTrue)
	}
}

func TestPETLevelBetweenAntiPiAndRegFile(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	run := func(lvl ace.TrackLevel) float64 {
		res, err := inj.Run(Config{Protection: cache.ProtParity, Level: lvl, Strikes: 40000, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.FalseDUEFraction()
	}
	anti := run(ace.TrackAntiPi)
	pet := run(ace.TrackPET)
	reg := run(ace.TrackRegFile)
	if !(pet <= anti+0.005 && reg <= pet+0.005) {
		t.Fatalf("PET coverage not between anti-π and regfile: %.4f %.4f %.4f", anti, pet, reg)
	}
}

func TestOutcomeString(t *testing.T) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.String() == "" {
			t.Errorf("outcome %d has empty name", o)
		}
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome should render")
	}
}

func TestResultFracEmpty(t *testing.T) {
	var r Result
	if r.Frac(OutcomeSDC) != 0 || r.SDCFraction() != 0 || r.DUEFraction() != 0 {
		t.Fatal("empty result should report zero fractions")
	}
}

func BenchmarkStrikeParityRegFile(b *testing.B) {
	tr, dead, _ := setup(b)
	inj := NewInjector(tr, dead)
	cfg := Config{Protection: cache.ProtParity, Level: ace.TrackRegFile, Strikes: 1, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := inj.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMemoryLevelCoversAllFalseErrors(t *testing.T) {
	// The paper's headline claim for §4: with π bits through the memory
	// system, 100% of false DUE events are covered. Exhaustively check
	// every committed instruction and field whose ground truth is un-ACE:
	// the engine must never signal (suppressed or still-latent are fine).
	tr, dead, _ := setup(t)
	eng := &pibit.Engine{Level: ace.TrackMemory, PETEntries: 512, Window: pibit.DefaultWindow}
	checked := 0
	for i := range tr.CommitLog {
		in := &tr.CommitLog[i]
		cat := dead.Of(in)
		if cat == ace.CatACE {
			continue
		}
		for f := isa.Field(0); f < isa.NumFields; f++ {
			if ace.BitACE(cat, f, in.Dest != isa.RegNone) {
				continue // truth-ACE bits may legitimately signal
			}
			if v := eng.Process(tr.CommitLog, i, f); v == pibit.VerdictSignalled {
				t.Fatalf("false error signalled at full tracking: cat=%v field=%v inst=%v", cat, f, in)
			}
			checked++
		}
		if checked > 60_000 {
			break // plenty of population; keep the test fast
		}
	}
	if checked < 10_000 {
		t.Fatalf("only %d un-ACE (instruction, field) pairs checked", checked)
	}
}

func TestFrontEndInjectorCampaign(t *testing.T) {
	// Chunk-granularity π bits (§4.2): strikes on the fetch buffer are
	// detected at delivery to decode and resolve through the same
	// commit-path machinery. The taxonomy invariants must hold there too.
	tr, dead, _ := setup(t)
	inj := NewFrontEndInjector(tr, dead)

	unprot, err := inj.Run(Config{Protection: cache.ProtNone, Strikes: 30000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if unprot.SDCFraction() <= 0 {
		t.Fatal("front-end strikes should produce SDC on an unprotected buffer")
	}
	fe := ace.AnalyzeFrontEnd(tr, dead)
	if got, want := unprot.SDCFraction(), fe.SDCAVF(); math.Abs(got-want) > 0.02 {
		t.Fatalf("front-end Monte-Carlo SDC %.4f vs analytic %.4f", got, want)
	}

	prev := math.Inf(1)
	for lvl := ace.TrackNever; lvl <= ace.TrackMemory; lvl++ {
		res, err := inj.Run(Config{Protection: cache.ProtParity, Level: lvl, Strikes: 30000, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[OutcomeMissedError] != 0 {
			t.Fatalf("front-end level %v missed %d true errors", lvl, res.Counts[OutcomeMissedError])
		}
		f := res.FalseDUEFraction()
		if f > prev+0.01 {
			t.Fatalf("front-end false DUE increased at level %v", lvl)
		}
		prev = f
	}
	if prev > 0.01 {
		t.Fatalf("full tracking left %.4f front-end false DUE", prev)
	}
}

func TestROBInjectorCampaign(t *testing.T) {
	// Reorder-buffer strikes (out-of-order family): retire is the read
	// point, only correct-path entries are ever read, and the commit-path
	// machinery resolves each strike exactly as for the IQ. The taxonomy
	// invariants must hold there too.
	cfg := pipeline.DefaultConfig()
	cfg.OutOfOrder = true
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	tr := pipeline.MustNew(cfg, gen, mem).Run(60000, true)
	rep := ace.Analyze(tr)
	inj := NewROBInjector(tr, rep.Dead)

	unprot, err := inj.Run(Config{Protection: cache.ProtNone, Strikes: 30000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if unprot.SDCFraction() <= 0 {
		t.Fatal("ROB strikes should produce SDC on an unprotected buffer")
	}
	rob := ace.AnalyzeROB(tr, rep.Dead)
	if got, want := unprot.SDCFraction(), rob.SDCAVF(); math.Abs(got-want) > 0.02 {
		t.Fatalf("ROB Monte-Carlo SDC %.4f vs analytic %.4f", got, want)
	}

	prev := math.Inf(1)
	for lvl := ace.TrackNever; lvl <= ace.TrackMemory; lvl++ {
		res, err := inj.Run(Config{Protection: cache.ProtParity, Level: lvl, Strikes: 30000, Seed: 14})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[OutcomeMissedError] != 0 {
			t.Fatalf("ROB level %v missed %d true errors", lvl, res.Counts[OutcomeMissedError])
		}
		f := res.FalseDUEFraction()
		if f > prev+0.01 {
			t.Fatalf("ROB false DUE increased at level %v", lvl)
		}
		prev = f
	}
	if prev > 0.01 {
		t.Fatalf("full tracking left %.4f ROB false DUE", prev)
	}
}

func TestStdErr(t *testing.T) {
	r := &Result{Strikes: 10000}
	r.Counts[OutcomeSDC] = 2500 // p = 0.25
	se := r.StdErr(OutcomeSDC)
	want := math.Sqrt(0.25 * 0.75 / 10000)
	if math.Abs(se-want) > 1e-9 {
		t.Fatalf("StdErr = %v, want %v", se, want)
	}
	var empty Result
	if empty.StdErr(OutcomeSDC) != 0 {
		t.Fatal("empty result should have zero stderr")
	}
	// The campaign estimates must sit within ~4 sigma of the analytic AVF.
	tr, dead, rep := setup(t)
	inj := NewInjector(tr, dead)
	res, err := inj.Run(Config{Protection: cache.ProtNone, Strikes: 50000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(res.SDCFraction() - rep.SDCAVF())
	if diff > 4*res.StdErr(OutcomeSDC)+1e-9 {
		t.Fatalf("Monte-Carlo SDC off by %v, > 4 sigma (%v)", diff, res.StdErr(OutcomeSDC))
	}
}
