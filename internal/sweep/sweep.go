// Package sweep runs design-space grids over the simulator: the cross
// product of benchmarks, exposure policies, queue sizes and issue
// disciplines, with one long-format row per cell — the shape plotting
// tools want. It powers cmd/sweep and the ablation studies beyond the
// paper's fixed design points.
package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"

	"softerror/internal/core"
	"softerror/internal/par"
	"softerror/internal/pipeline"
	"softerror/internal/serate"
	"softerror/internal/spec"
)

// Grid describes the design space to sweep. Every axis must be non-empty;
// the run covers the full cross product.
type Grid struct {
	Benches    []spec.Benchmark
	Policies   []core.Policy
	IQSizes    []int
	OutOfOrder []bool
	// Commits per cell (default core.DefaultCommits).
	Commits uint64
	// Workers bounds Run's parallelism; <= 0 means the par package default
	// (GOMAXPROCS, or the -j flag of the calling command).
	Workers int
}

// Row is one cell's measurements.
type Row struct {
	Bench      string
	FP         bool
	Policy     core.Policy
	IQSize     int
	OutOfOrder bool

	IPC         float64
	SDCAVF      float64
	DUEAVF      float64
	FalseDUEAVF float64
	MeritSDC    float64 // IPC / SDC AVF, the MITF proxy
	Squashes    uint64
}

// Size returns the number of cells in the grid.
func (g *Grid) Size() int {
	return len(g.Benches) * len(g.Policies) * len(g.IQSizes) * len(g.OutOfOrder)
}

func (g *Grid) validate() error {
	if len(g.Benches) == 0 || len(g.Policies) == 0 ||
		len(g.IQSizes) == 0 || len(g.OutOfOrder) == 0 {
		return fmt.Errorf("sweep: every grid axis needs at least one value")
	}
	for _, n := range g.IQSizes {
		if n < 1 {
			return fmt.Errorf("sweep: IQ size %d invalid", n)
		}
	}
	return nil
}

// cell maps a flat index to its axis values, benchmark-major — the same
// enumeration order the serial nested loops used, so rows[i] lands exactly
// where a serial run would have appended it.
func (g *Grid) cell(i int) (b spec.Benchmark, pol core.Policy, iq int, ooo bool) {
	no := len(g.OutOfOrder)
	ni := len(g.IQSizes)
	np := len(g.Policies)
	ooo = g.OutOfOrder[i%no]
	i /= no
	iq = g.IQSizes[i%ni]
	i /= ni
	pol = g.Policies[i%np]
	i /= np
	b = g.Benches[i]
	return b, pol, iq, ooo
}

// Run executes the grid on the worker pool and returns one row per cell, in
// axis order (benchmark-major) regardless of scheduling: each worker writes
// only its own index of a pre-sized slice. progress, if non-nil, is called
// after each completed cell with a strictly increasing done count.
func (g *Grid) Run(progress func(done, total int)) ([]Row, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	commits := g.Commits
	if commits == 0 {
		commits = core.DefaultCommits
	}
	total := g.Size()
	rows := make([]Row, total)
	var (
		mu   sync.Mutex
		done int
	)
	err := par.ForEach(context.Background(), total, g.Workers,
		func(_ context.Context, i int) error {
			b, pol, iq, ooo := g.cell(i)
			cfg := pipeline.DefaultConfig()
			pol.Apply(&cfg)
			cfg.IQSize = iq
			cfg.OutOfOrder = ooo
			res, err := core.Run(core.Config{
				Workload: b.Params,
				Pipeline: cfg,
				Commits:  commits,
			})
			if err != nil {
				return fmt.Errorf("sweep: %s/%v/iq%d/ooo=%v: %w",
					b.Name, pol, iq, ooo, err)
			}
			rows[i] = Row{
				Bench:       b.Name,
				FP:          b.FP,
				Policy:      pol,
				IQSize:      iq,
				OutOfOrder:  ooo,
				IPC:         res.IPC,
				SDCAVF:      res.Report.SDCAVF(),
				DUEAVF:      res.Report.DUEAVF(),
				FalseDUEAVF: res.Report.FalseDUEAVF(),
				MeritSDC:    serate.Merit(res.IPC, res.Report.SDCAVF()),
				Squashes:    res.Squashes,
			}
			if progress != nil {
				// Completion order is scheduling-dependent, but the done
				// count is advanced under the lock, so callers observe a
				// monotonic 1..total sequence.
				mu.Lock()
				done++
				progress(done, total)
				mu.Unlock()
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// csvHeader is the long-format column set.
var csvHeader = []string{
	"bench", "suite", "policy", "iq_size", "out_of_order",
	"ipc", "sdc_avf", "due_avf", "false_due_avf", "merit_sdc", "squashes",
}

// WriteCSV emits the rows in long format with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		suite := "int"
		if r.FP {
			suite = "fp"
		}
		rec := []string{
			r.Bench, suite, r.Policy.String(),
			strconv.Itoa(r.IQSize), strconv.FormatBool(r.OutOfOrder),
			fmt.Sprintf("%.4f", r.IPC),
			fmt.Sprintf("%.6f", r.SDCAVF),
			fmt.Sprintf("%.6f", r.DUEAVF),
			fmt.Sprintf("%.6f", r.FalseDUEAVF),
			fmt.Sprintf("%.4f", r.MeritSDC),
			strconv.FormatUint(r.Squashes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
